// End-to-end integration tests crossing module boundaries: file-backed
// databases, the full SQL + mining pipeline, and determinism of complete
// runs.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/rules.h"
#include "core/setm.h"
#include "core/setm_sql.h"
#include "datagen/quest_generator.h"
#include "datagen/retail_generator.h"
#include "datagen/transaction_io.h"
#include "sql/engine.h"

namespace setm {
namespace {

TEST(IntegrationTest, FileBackedDatabaseMinesCorrectly) {
  const std::string path = testing::TempDir() + "/setm_integration.db";
  QuestOptions gen;
  gen.seed = 900;
  gen.num_transactions = 500;
  gen.avg_transaction_size = 5;
  gen.num_items = 30;
  TransactionDb txns = QuestGenerator(gen).Generate();
  MiningOptions options;
  options.min_support = 0.04;

  // Reference result from a plain in-memory run.
  FrequentItemsets expected;
  {
    Database mem_db;
    auto r = SetmMiner(&mem_db).Mine(txns, options);
    ASSERT_TRUE(r.ok());
    expected = std::move(r).value().itemsets;
  }

  // File-backed run: pages really go through pread/pwrite.
  {
    DatabaseOptions db_options;
    db_options.file_path = path;
    db_options.pool_frames = 64;
    auto db = Database::Open(db_options);
    ASSERT_TRUE(db.ok());
    SetmMiner miner(db->get(), SetmOptions{TableBacking::kHeap});
    auto r = miner.Mine(txns, options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r.value().itemsets == expected);
    EXPECT_GT(r.value().io.page_writes, 0u);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, CsvToSqlToRulesPipeline) {
  // CSV file -> catalog table via LoadSalesTable -> SETM-SQL -> rules.
  const std::string path = testing::TempDir() + "/pipeline.csv";
  QuestOptions gen;
  gen.seed = 901;
  gen.num_transactions = 300;
  gen.avg_transaction_size = 4;
  gen.num_items = 15;
  TransactionDb txns = QuestGenerator(gen).Generate();
  ASSERT_TRUE(SaveTransactionsCsv(path, txns).ok());
  auto loaded = LoadTransactionsCsv(path);
  ASSERT_TRUE(loaded.ok());

  Database db;
  auto sales =
      LoadSalesTable(&db, "sales", loaded.value(), TableBacking::kHeap);
  ASSERT_TRUE(sales.ok());
  MiningOptions options;
  options.min_support = 0.05;
  options.min_confidence = 0.5;
  SetmSqlMiner miner(&db, TableBacking::kHeap);
  auto result = miner.MineTable(*sales.value(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rules = GenerateRules(result.value().itemsets, options).value();
  for (const auto& r : rules) {
    EXPECT_GE(r.confidence + 1e-12, 0.5);
    EXPECT_GE(r.support + 1e-12, 0.05);
  }
  // The scratch relations are inspectable as ordinary catalog tables.
  sql::SqlEngine engine(&db);
  auto c1 = engine.Execute("SELECT item1, cnt FROM setm_c1 ORDER BY item1");
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1.value().rows.size(), result.value().itemsets.OfSize(1).size());
  std::remove(path.c_str());
}

TEST(IntegrationTest, FullRunsAreDeterministic) {
  RetailOptions retail;
  retail.num_transactions = 5000;  // trimmed for test time
  TransactionDb txns = RetailGenerator(retail).Generate();
  MiningOptions options;
  options.min_support = 0.005;
  options.min_confidence = 0.6;

  std::vector<std::string> renders;
  for (int run = 0; run < 2; ++run) {
    Database db;
    auto result = SetmMiner(&db).Mine(txns, options);
    ASSERT_TRUE(result.ok());
    auto rules = GenerateRules(result.value().itemsets, options).value();
    std::string render;
    for (const auto& r : rules) render += FormatRule(r) + "\n";
    renders.push_back(std::move(render));
  }
  EXPECT_EQ(renders[0], renders[1]);
  EXPECT_FALSE(renders[0].empty());
}

TEST(IntegrationTest, SqlEngineSurvivesMiningScratchReuse) {
  // Interleave ad-hoc SQL with repeated mining runs over the same catalog.
  Database db;
  sql::SqlEngine engine(&db);
  QuestOptions gen;
  gen.num_transactions = 100;
  gen.avg_transaction_size = 4;
  gen.num_items = 10;
  gen.seed = 5;
  auto sales = LoadSalesTable(&db, "sales", QuestGenerator(gen).Generate(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  SetmSqlMiner miner(&db);
  MiningOptions options;
  options.min_support = 0.05;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(miner.MineTable(*sales.value(), options).ok())
        << "round " << round;
    auto count = engine.Execute("SELECT DISTINCT trans_id FROM sales");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(count.value().rows.size(), 100u);
  }
}

TEST(IntegrationTest, TinyPoolsStillProduceCorrectResults) {
  // Starved resources must cost I/O, never correctness.
  QuestOptions gen;
  gen.seed = 902;
  gen.num_transactions = 400;
  gen.avg_transaction_size = 6;
  gen.num_items = 25;
  TransactionDb txns = QuestGenerator(gen).Generate();
  MiningOptions options;
  options.min_support = 0.03;

  FrequentItemsets expected;
  {
    Database db;
    auto r = SetmMiner(&db).Mine(txns, options);
    ASSERT_TRUE(r.ok());
    expected = std::move(r).value().itemsets;
  }
  DatabaseOptions starved;
  starved.pool_frames = 8;
  starved.temp_pool_frames = 8;
  starved.sort_memory_bytes = 512;
  Database db(starved);
  SetmMiner miner(&db, SetmOptions{TableBacking::kHeap});
  auto r = miner.Mine(txns, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().itemsets == expected);
}

}  // namespace
}  // namespace setm

// Tests pinning the analytical cost model to the paper's Sections 3.2/4.3
// arithmetic.

#include <gtest/gtest.h>

#include "costmodel/analysis.h"

namespace setm {
namespace {

TEST(BTreeEstimateTest, PaperItemTidIndexNumbers) {
  // 2,000,000 entries, 500 per leaf, 333 per non-leaf: 4,000 leaves,
  // "(1 + 4,000/333) = 14" non-leaf pages (root + 13), 3 levels.
  BTreeEstimate e = EstimateBTree(2000000, 500, 333);
  EXPECT_EQ(e.leaf_pages, 4000u);
  EXPECT_EQ(e.nonleaf_pages, 14u);  // 13 level-2 pages + 1 root
  EXPECT_EQ(e.levels, 3u);
}

TEST(BTreeEstimateTest, SinglePageTree) {
  BTreeEstimate e = EstimateBTree(100, 500, 333);
  EXPECT_EQ(e.leaf_pages, 1u);
  EXPECT_EQ(e.nonleaf_pages, 0u);
  EXPECT_EQ(e.levels, 1u);
}

TEST(NestedLoopAnalysisTest, ReproducesSection32) {
  HypotheticalDb db;  // paper defaults
  NestedLoopAnalysis a = AnalyzeNestedLoop(db);
  // |C1| = 1000 items; ~40 leaf fetches + ~2000 tid-index fetches per item.
  EXPECT_EQ(a.c1_size, 1000u);
  EXPECT_NEAR(a.leaf_fetches_per_item, 40.0, 1.0);
  EXPECT_NEAR(a.matching_tids_per_item, 2000.0, 1.0);
  // "about 1000 x (40 + 2000) ~ 2,000,000 page fetches"
  EXPECT_NEAR(static_cast<double>(a.total_page_fetches), 2040000.0, 50000.0);
  // "~ 40,000 seconds, which is more than 11 hours"
  EXPECT_GT(a.estimated_seconds, 11 * 3600.0);
  EXPECT_LT(a.estimated_seconds, 13 * 3600.0);
}

TEST(SortMergeAnalysisTest, ReproducesSection43) {
  HypotheticalDb db;
  SortMergeAnalysis a = AnalyzeSortMerge(db, /*max_pattern_length=*/2);
  // ||R1|| = 2M tuples x 8 bytes / 4096 ~ 3,907 (paper rounds to 4,000).
  EXPECT_NEAR(static_cast<double>(a.r1_pages), 4000.0, 100.0);
  // ||R'_2|| = C(10,2) x 200,000 x 12 bytes / 4096 ~ 26,367 (paper: 27,000).
  ASSERT_EQ(a.r_prime_pages.size(), 1u);
  EXPECT_NEAR(static_cast<double>(a.r_prime_pages[0]), 27000.0, 700.0);
  // 3 x 4,000 + 4 x 27,000 = 120,000 page accesses.
  EXPECT_NEAR(static_cast<double>(a.total_page_accesses), 120000.0, 3000.0);
  // "1200 seconds or 10 minutes".
  EXPECT_NEAR(a.estimated_seconds, 1200.0, 30.0);
}

TEST(AnalysisComparisonTest, NestedLoopLosesByOrdersOfMagnitude) {
  HypotheticalDb db;
  NestedLoopAnalysis nl = AnalyzeNestedLoop(db);
  SortMergeAnalysis sm = AnalyzeSortMerge(db, 2);
  // The paper's headline: >11 hours vs ~10 minutes, a ~30x+ time gap and
  // ~17x page-access gap.
  EXPECT_GT(nl.estimated_seconds / sm.estimated_seconds, 25.0);
  EXPECT_GT(static_cast<double>(nl.total_page_fetches) /
                static_cast<double>(sm.total_page_accesses),
            10.0);
  const std::string table = RenderAnalysisTable(nl, sm);
  EXPECT_NE(table.find("nested-loop"), std::string::npos);
  EXPECT_NE(table.find("sort-merge"), std::string::npos);
}

TEST(AnalysisScalingTest, SortMergeScalesWithTransactionSize) {
  HypotheticalDb db;
  db.avg_transaction_size = 5.0;
  SortMergeAnalysis small = AnalyzeSortMerge(db, 2);
  db.avg_transaction_size = 20.0;
  SortMergeAnalysis large = AnalyzeSortMerge(db, 2);
  // |R'_2| grows quadratically with basket size.
  EXPECT_GT(large.r_prime_pages[0], small.r_prime_pages[0] * 10);
}

TEST(AnalysisScalingTest, DeeperIterationsAddPasses) {
  HypotheticalDb db;
  SortMergeAnalysis two = AnalyzeSortMerge(db, 2);
  SortMergeAnalysis three = AnalyzeSortMerge(db, 3);
  EXPECT_GT(three.total_page_accesses, two.total_page_accesses);
  EXPECT_EQ(three.r_prime_pages.size(), 2u);
}

TEST(HypotheticalDbTest, DerivedQuantities) {
  HypotheticalDb db;
  EXPECT_EQ(db.SalesTuples(), 2000000u);
  EXPECT_DOUBLE_EQ(db.ItemProbability(), 0.01);
}

}  // namespace
}  // namespace setm

// Unit and integration tests for src/net: line framing, protocol parsing,
// response framing, and the MiningServer session state machine — admission
// control, busy rejection, disconnect-cancellation, APPEND streaming and
// graceful shutdown — against a real server on a loopback socket.
//
// The suite is tier1 and must stay TSan-clean: every cross-thread seam the
// server has (loop thread vs job pool vs test thread) gets exercised here.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/setm.h"
#include "core/types.h"
#include "net/client.h"
#include "net/line_buffer.h"
#include "net/protocol.h"
#include "net/server.h"
#include "relational/database.h"

namespace setm::net {
namespace {

// ---------------------------------------------------------------- framing

TEST(LineBufferTest, ReassemblesChunkedLines) {
  LineBuffer buffer(64);
  std::string line;
  buffer.Feed("PI", 2);
  EXPECT_FALSE(buffer.NextLine(&line));
  buffer.Feed("NG\nQU", 5);
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "PING");
  EXPECT_FALSE(buffer.NextLine(&line));
  buffer.Feed("IT\n", 3);
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "QUIT");
}

TEST(LineBufferTest, SplitsCoalescedLinesAndStripsCrlf) {
  LineBuffer buffer(64);
  const std::string wire = "a\r\nb\nc\r\n";
  buffer.Feed(wire.data(), wire.size());
  std::string line;
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "a");
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "b");
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "c");
  EXPECT_FALSE(buffer.NextLine(&line));
  EXPECT_EQ(buffer.buffered_bytes(), 0u);
}

TEST(LineBufferTest, EmptyLinesSurvive) {
  LineBuffer buffer(64);
  buffer.Feed("\n\nx\n", 4);
  std::string line;
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "");
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "x");
}

TEST(LineBufferTest, OversizedLineDiscardedAndResynced) {
  LineBuffer buffer(8);
  const std::string wire = std::string(100, 'x');
  buffer.Feed(wire.data(), wire.size());  // no newline yet: still discarding
  std::string line;
  EXPECT_FALSE(buffer.NextLine(&line));
  EXPECT_LE(buffer.buffered_bytes(), 8u);  // memory stays bounded
  buffer.Feed("tail\nok\n", 8);
  ASSERT_TRUE(buffer.NextLine(&line));  // "xxx...tail" was eaten whole
  EXPECT_EQ(line, "ok");
  EXPECT_EQ(buffer.TakeOversized(), 1u);
  EXPECT_EQ(buffer.TakeOversized(), 0u);  // take semantics: reset on read
}

TEST(LineBufferTest, CountsEachOversizedLine) {
  LineBuffer buffer(4);
  const std::string wire = "aaaaaaaa\nbbbbbbbb\nok\n";
  buffer.Feed(wire.data(), wire.size());
  std::string line;
  ASSERT_TRUE(buffer.NextLine(&line));
  EXPECT_EQ(line, "ok");
  EXPECT_EQ(buffer.TakeOversized(), 2u);
}

TEST(WriteBufferTest, CapsBacklog) {
  WriteBuffer buffer(8);
  EXPECT_TRUE(buffer.Append("1234").ok());
  Status overflow = buffer.Append("56789");
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(buffer.pending_bytes(), 4u);  // the failed append queued nothing
}

// ---------------------------------------------------------------- parsing

TEST(ProtocolTest, ParsesMineWithAllOptions) {
  auto cmd_or =
      ParseCommand("mine sales support 2.5% algo setm threads 3 maxk 4");
  ASSERT_TRUE(cmd_or.ok()) << cmd_or.status().ToString();
  const Command& cmd = cmd_or.value();
  EXPECT_EQ(cmd.verb, Verb::kMine);
  EXPECT_EQ(cmd.table, "sales");  // table names keep their case
  EXPECT_DOUBLE_EQ(cmd.min_support, 0.025);
  EXPECT_EQ(cmd.min_support_count, 0);
  EXPECT_EQ(cmd.algo, "setm");
  EXPECT_EQ(cmd.threads, 3u);
  EXPECT_EQ(cmd.max_k, 4u);
}

TEST(ProtocolTest, ParsesAbsoluteSupport) {
  auto cmd_or = ParseCommand("MINE Sales SUPPORT 150");
  ASSERT_TRUE(cmd_or.ok());
  EXPECT_EQ(cmd_or.value().table, "Sales");
  EXPECT_EQ(cmd_or.value().min_support_count, 150);
  EXPECT_DOUBLE_EQ(cmd_or.value().min_support, 0.0);
}

TEST(ProtocolTest, ParsesRulesAndStats) {
  auto rules_or = ParseCommand("RULES 70% MODE subsets");
  ASSERT_TRUE(rules_or.ok());
  EXPECT_EQ(rules_or.value().verb, Verb::kRules);
  EXPECT_DOUBLE_EQ(rules_or.value().min_confidence, 0.70);
  EXPECT_EQ(rules_or.value().rule_mode, RuleMode::kAnySubset);

  auto stats_or = ParseCommand("STATS prom");
  ASSERT_TRUE(stats_or.ok());
  EXPECT_EQ(stats_or.value().verb, Verb::kStats);
  EXPECT_EQ(stats_or.value().stats_format, "prom");
}

TEST(ProtocolTest, RejectsMalformedLines) {
  const char* bad[] = {
      "FROBNICATE",                 // unknown verb
      "MINE",                       // missing table
      "MINE sales",                 // missing SUPPORT
      "MINE sales SUPPORT",         // missing spec
      "MINE sales SUPPORT -5",      // negative support
      "MINE sales SUPPORT 2% BOGUS 1",  // unknown option
      "MINE sales SUPPORT 2% THREADS x",
      "RULES",                      // missing confidence
      "RULES 120%",                 // out of range
      "RULES 50 MODE sideways",     // unknown mode
      "STATS xml",                  // unknown format
  };
  for (const char* line : bad) {
    auto cmd_or = ParseCommand(line);
    EXPECT_FALSE(cmd_or.ok()) << "accepted: " << line;
    EXPECT_EQ(cmd_or.status().code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(ProtocolTest, ParsesLcountAndMerge) {
  // Begin form: table, K 1, optional METHOD / FILTER in either order.
  auto begin_or = ParseCommand("LCOUNT sales K 1");
  ASSERT_TRUE(begin_or.ok()) << begin_or.status().ToString();
  EXPECT_EQ(begin_or.value().verb, Verb::kLcount);
  EXPECT_EQ(begin_or.value().table, "sales");
  EXPECT_EQ(begin_or.value().shard_k, 1u);
  EXPECT_EQ(begin_or.value().shard_method, "sortmerge");
  EXPECT_FALSE(begin_or.value().shard_filter);

  auto hashed_or = ParseCommand("lcount Sales k 1 method HASH filter");
  ASSERT_TRUE(hashed_or.ok()) << hashed_or.status().ToString();
  EXPECT_EQ(hashed_or.value().table, "Sales");  // table keeps its case
  EXPECT_EQ(hashed_or.value().shard_method, "hash");
  EXPECT_TRUE(hashed_or.value().shard_filter);

  // Continuation form: no table, k >= 2.
  auto cont_or = ParseCommand("LCOUNT K 3");
  ASSERT_TRUE(cont_or.ok()) << cont_or.status().ToString();
  EXPECT_EQ(cont_or.value().verb, Verb::kLcount);
  EXPECT_TRUE(cont_or.value().table.empty());
  EXPECT_EQ(cont_or.value().shard_k, 3u);

  auto merge_or = ParseCommand("MERGE K 2");
  ASSERT_TRUE(merge_or.ok()) << merge_or.status().ToString();
  EXPECT_EQ(merge_or.value().verb, Verb::kMerge);
  EXPECT_EQ(merge_or.value().shard_k, 2u);
}

TEST(ProtocolTest, RejectsMalformedShardLines) {
  const char* bad[] = {
      "LCOUNT",                        // nothing
      "LCOUNT K",                      // missing k
      "LCOUNT K 1",                    // a run must begin with a table
      "LCOUNT K 0",                    // k out of range
      "LCOUNT K 65",                   // k over the cap
      "LCOUNT K x",                    // not a number
      "LCOUNT sales",                  // missing K 1
      "LCOUNT sales K 2",              // new runs begin at K 1
      "LCOUNT sales K 1 METHOD",       // missing method value
      "LCOUNT sales K 1 METHOD tree",  // unknown method
      "LCOUNT sales K 1 BOGUS",        // unknown option
      "MERGE",                         // nothing
      "MERGE K",                       // missing k
      "MERGE K 0",                     // k out of range
      "MERGE K 65",                    // k over the cap
      "MERGE 2",                       // missing K keyword
      "MERGE K 2 EXTRA",               // trailing junk
  };
  for (const char* line : bad) {
    auto cmd_or = ParseCommand(line);
    EXPECT_FALSE(cmd_or.ok()) << "accepted: " << line;
    EXPECT_EQ(cmd_or.status().code(), StatusCode::kInvalidArgument) << line;
  }
}

TEST(ProtocolTest, ParsesItemsetLineStrictlyAscending) {
  auto one_or = ParseItemsetLine("7");
  ASSERT_TRUE(one_or.ok());
  EXPECT_EQ(one_or.value(), (std::vector<ItemId>{7}));

  auto three_or = ParseItemsetLine("1 3 12");
  ASSERT_TRUE(three_or.ok());
  EXPECT_EQ(three_or.value(), (std::vector<ItemId>{1, 3, 12}));

  const char* bad[] = {
      "",         // empty
      "x",        // not a number
      "-1",       // negative item
      "3 1",      // descending
      "1 1",      // duplicate (itemsets are strictly ascending)
      "1 2 x",    // trailing junk
  };
  for (const char* line : bad) {
    auto itemset_or = ParseItemsetLine(line);
    EXPECT_FALSE(itemset_or.ok()) << "accepted: '" << line << "'";
    EXPECT_EQ(itemset_or.status().code(), StatusCode::kInvalidArgument)
        << line;
  }
}

TEST(ProtocolTest, ParsesAppendRowSortedAndDeduped) {
  auto row_or = ParseAppendRow("42 7 3 7 1");
  ASSERT_TRUE(row_or.ok());
  EXPECT_EQ(row_or.value().id, 42u);
  EXPECT_EQ(row_or.value().items, (std::vector<ItemId>{1, 3, 7}));

  EXPECT_FALSE(ParseAppendRow("42").ok());       // no items
  EXPECT_FALSE(ParseAppendRow("x 1").ok());      // bad id
  EXPECT_FALSE(ParseAppendRow("42 -3").ok());    // negative item
}

TEST(ProtocolTest, DotStuffingRoundTrips) {
  const std::string framed = FrameOk("info", ".hidden\nplain\n..\n");
  // Every payload line that starts with '.' gains a protection dot.
  EXPECT_EQ(framed, "OK info\n..hidden\nplain\n...\n.\n");
  EXPECT_EQ(UnstuffPayloadLine("..hidden"), ".hidden");
  EXPECT_EQ(UnstuffPayloadLine("..."), "..");
  EXPECT_EQ(UnstuffPayloadLine("plain"), "plain");
}

TEST(ProtocolTest, FrameErrorCarriesCodeName) {
  EXPECT_EQ(FrameError(Status::NotFound("no such table")),
            "ERR NotFound no such table\n");
}

// ------------------------------------------------------------ the server

/// A gate the test holds closed to park a mining job mid-iteration: the
/// deterministic handle on "a request is in flight right now".
class IterationGate {
 public:
  /// Blocks the calling (job) thread until Open() when the gate is closed.
  void Hook(const IterationStats&) {
    std::unique_lock<std::mutex> lock(mutex_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return open_; });
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mutex_);
    open_ = true;
    cv_.notify_all();
  }

  /// Waits until a job thread is parked inside the gate.
  bool AwaitEntered(int timeout_ms = 5000) {
    std::unique_lock<std::mutex> lock(mutex_);
    return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        [this] { return entered_ > 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool open_ = false;
};

TransactionDb TinyTxns() {
  // The paper's Section 4.2 worked example (A=0 .. H=7).
  return {
      {10, {0, 1, 2}}, {20, {0, 1, 3}}, {30, {0, 1, 2}}, {40, {1, 2, 3}},
      {50, {0, 2, 6}}, {60, {0, 3, 6}}, {70, {0, 4, 7}}, {80, {3, 4, 5}},
      {90, {3, 4, 5}}, {99, {3, 4, 5}},
  };
}

/// One in-memory database + server, bound to an ephemeral loopback port.
struct ServerFixture {
  explicit ServerFixture(ServerOptions options = {}) {
    auto sales = LoadSalesTable(&db, "sales", TinyTxns(), TableBacking::kMemory);
    EXPECT_TRUE(sales.ok()) << sales.status().ToString();
    options.port = 0;
    options.store_prefix = "";  // per-test isolation: no shared result cache
    auto server_or = MiningServer::Create(&db, std::move(options));
    EXPECT_TRUE(server_or.ok()) << server_or.status().ToString();
    server = std::move(server_or).value();
    EXPECT_TRUE(server->Start().ok());
  }

  ~ServerFixture() {
    if (server != nullptr) {
      EXPECT_TRUE(server->Stop().ok());
    }
  }

  std::unique_ptr<BlockingClient> Connect() {
    auto client_or = BlockingClient::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client_or.ok()) << client_or.status().ToString();
    return std::move(client_or).value();
  }

  /// Polls a server stat until it becomes true or the deadline passes.
  template <typename Predicate>
  bool AwaitStats(Predicate pred, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred(server->Stats())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred(server->Stats());
  }

  Database db;
  std::unique_ptr<MiningServer> server;
};

TEST(MiningServerTest, PingMineRulesQuit) {
  ServerFixture fixture;
  auto client = fixture.Connect();

  auto pong = client->Exec("PING");
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value().ok);
  EXPECT_EQ(pong.value().info, "pong");

  auto mine = client->Exec("MINE sales SUPPORT 30%");
  ASSERT_TRUE(mine.ok());
  ASSERT_TRUE(mine.value().ok) << mine.value().info;
  EXPECT_NE(mine.value().info.find("transactions=10"), std::string::npos);
  EXPECT_FALSE(mine.value().payload.empty());

  // The session remembers its last result; RULES works off it.
  auto rules = client->Exec("RULES 70");
  ASSERT_TRUE(rules.ok());
  ASSERT_TRUE(rules.value().ok) << rules.value().info;
  EXPECT_NE(rules.value().payload.find(
                "antecedent,consequent,confidence,support,lift"),
            std::string::npos);

  auto quit = client->Exec("QUIT");
  ASSERT_TRUE(quit.ok());
  EXPECT_TRUE(quit.value().ok);
  EXPECT_EQ(quit.value().info, "bye");
}

TEST(MiningServerTest, MineMatchesDirectMiner) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  auto mine = client->Exec("MINE sales SUPPORT 3");
  ASSERT_TRUE(mine.ok());
  ASSERT_TRUE(mine.value().ok) << mine.value().info;

  Database oracle_db;
  MiningOptions options;
  options.min_support_count = 3;
  auto oracle = SetmMiner(&oracle_db).Mine(TinyTxns(), options);
  ASSERT_TRUE(oracle.ok());
  FrequentItemsets itemsets = std::move(oracle.value().itemsets);
  itemsets.Normalize();
  EXPECT_EQ(mine.value().payload, RenderItemsets(itemsets));
}

TEST(MiningServerTest, ParseErrorKeepsConnectionAlive) {
  ServerFixture fixture;
  auto client = fixture.Connect();

  auto bad = client->Exec("FROBNICATE the database");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad.value().ok);
  EXPECT_EQ(bad.value().code, "InvalidArgument");

  auto missing = client->Exec("MINE nosuch SUPPORT 2%");
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing.value().ok);
  EXPECT_EQ(missing.value().code, "NotFound");

  auto rules = client->Exec("RULES 50");  // no MINE ran on this connection
  ASSERT_TRUE(rules.ok());
  EXPECT_FALSE(rules.value().ok);
  EXPECT_EQ(rules.value().code, "NotFound");

  auto pong = client->Exec("PING");  // all of the above were protocol errors
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value().ok);
  EXPECT_EQ(fixture.server->Stats().parse_errors, 1u);
}

TEST(MiningServerTest, OversizedLineRejectedNotDisconnected) {
  ServerOptions options;
  options.max_line_bytes = 64;
  ServerFixture fixture(options);
  auto client = fixture.Connect();

  ASSERT_TRUE(client->SendLine(std::string(500, 'y')).ok());
  auto err = client->ReadResponse();
  ASSERT_TRUE(err.ok());
  EXPECT_FALSE(err.value().ok);
  EXPECT_EQ(err.value().code, "ResourceExhausted");

  auto pong = client->Exec("PING");  // framing resynchronized
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value().ok);
  EXPECT_EQ(fixture.server->Stats().oversized_lines, 1u);
}

TEST(MiningServerTest, ConnectionLimitRejectsWithError) {
  ServerOptions options;
  options.max_connections = 1;
  ServerFixture fixture(options);
  auto first = fixture.Connect();
  ASSERT_TRUE(first->Exec("PING").ok());

  auto second = fixture.Connect();  // accepted then refused at admission
  auto err = second->ReadResponse();
  ASSERT_TRUE(err.ok()) << err.status().ToString();
  EXPECT_FALSE(err.value().ok);
  EXPECT_EQ(err.value().code, "ResourceExhausted");
  EXPECT_TRUE(fixture.AwaitStats(
      [](const ServerStats& s) { return s.rejected_connections == 1; }));

  // The slot frees on disconnect: QUIT the first, the next connect serves.
  ASSERT_TRUE(first->Exec("QUIT").ok());
  first.reset();
  EXPECT_TRUE(fixture.AwaitStats(
      [](const ServerStats& s) { return s.connections_active == 0; }));
  auto third = fixture.Connect();
  auto pong = third->Exec("PING");
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value().ok);
}

TEST(MiningServerTest, SecondRequestWhileBusyIsRejected) {
  IterationGate gate;
  ServerOptions options;
  options.hooks.on_iteration = [&gate](const IterationStats& stats) {
    gate.Hook(stats);
  };
  ServerFixture fixture(options);
  auto client = fixture.Connect();

  ASSERT_TRUE(client->SendLine("MINE sales SUPPORT 30%").ok());
  ASSERT_TRUE(gate.AwaitEntered());  // the job is parked mid-iteration

  // Job verbs are rejected while one is in flight...
  ASSERT_TRUE(client->SendLine("MINE sales SUPPORT 40%").ok());
  auto busy = client->ReadResponse();
  ASSERT_TRUE(busy.ok());
  EXPECT_FALSE(busy.value().ok);
  EXPECT_EQ(busy.value().code, "ResourceExhausted");

  // ...but PING and STATS are always served from the loop thread.
  ASSERT_TRUE(client->SendLine("PING").ok());
  auto pong = client->ReadResponse();
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value().ok);
  EXPECT_EQ(pong.value().info, "pong");

  gate.Open();
  auto mine = client->ReadResponse();  // the parked job's answer arrives
  ASSERT_TRUE(mine.ok());
  EXPECT_TRUE(mine.value().ok) << mine.value().info;
  EXPECT_EQ(fixture.server->Stats().rejected_busy, 1u);
}

TEST(MiningServerTest, DisconnectMidMineCancelsTheJob) {
  IterationGate gate;
  ServerOptions options;
  options.hooks.on_iteration = [&gate](const IterationStats& stats) {
    gate.Hook(stats);
  };
  ServerFixture fixture(options);

  auto doomed = fixture.Connect();
  ASSERT_TRUE(doomed->SendLine("MINE sales SUPPORT 30%").ok());
  ASSERT_TRUE(gate.AwaitEntered());

  doomed.reset();  // hard close: no QUIT, the job is still parked

  // The loop notices the disconnect and flips the job's cancel flag...
  EXPECT_TRUE(fixture.AwaitStats(
      [](const ServerStats& s) { return s.disconnects == 1; }));

  // ...and once the job reaches its next iteration, it stops as cancelled.
  gate.Open();
  EXPECT_TRUE(fixture.AwaitStats(
      [](const ServerStats& s) { return s.cancelled_jobs == 1; }));

  // The server stays healthy for the next client.
  auto client = fixture.Connect();
  auto mine = client->Exec("MINE sales SUPPORT 30%");
  ASSERT_TRUE(mine.ok());
  EXPECT_TRUE(mine.value().ok) << mine.value().info;
}

TEST(MiningServerTest, AppendStreamsRowsAndRemines) {
  ServerFixture fixture;
  auto client = fixture.Connect();

  ASSERT_TRUE(client->SendLine("APPEND sales SUPPORT 3").ok());
  ASSERT_TRUE(client->SendLine("101 3 4 5").ok());
  ASSERT_TRUE(client->SendLine("102 3 4 5").ok());
  ASSERT_TRUE(client->SendLine(".").ok());
  auto appended = client->ReadResponse();
  ASSERT_TRUE(appended.ok());
  ASSERT_TRUE(appended.value().ok) << appended.value().info;
  EXPECT_NE(appended.value().info.find("appended=2"), std::string::npos);
  EXPECT_NE(appended.value().info.find("transactions=12"), std::string::npos);

  // {3 4 5} now has support 5 of 12; the refreshed answer must agree with a
  // direct mine over the grown database.
  TransactionDb grown = TinyTxns();
  grown.push_back({101, {3, 4, 5}});
  grown.push_back({102, {3, 4, 5}});
  Database oracle_db;
  MiningOptions mine_options;
  mine_options.min_support_count = 3;
  auto oracle = SetmMiner(&oracle_db).Mine(grown, mine_options);
  ASSERT_TRUE(oracle.ok());
  FrequentItemsets itemsets = std::move(oracle.value().itemsets);
  itemsets.Normalize();
  EXPECT_EQ(appended.value().payload, RenderItemsets(itemsets));
}

TEST(MiningServerTest, AppendBadRowDrainsBatchAndReportsOnce) {
  ServerFixture fixture;
  auto client = fixture.Connect();

  ASSERT_TRUE(client->SendLine("APPEND sales SUPPORT 3").ok());
  ASSERT_TRUE(client->SendLine("101 3 4 5").ok());
  ASSERT_TRUE(client->SendLine("not a row").ok());
  ASSERT_TRUE(client->SendLine("102 3 4 5").ok());  // still drained quietly
  ASSERT_TRUE(client->SendLine(".").ok());
  auto err = client->ReadResponse();
  ASSERT_TRUE(err.ok());
  EXPECT_FALSE(err.value().ok);  // one ERR for the whole batch, at the "."
  EXPECT_EQ(err.value().code, "InvalidArgument");

  auto pong = client->Exec("PING");  // session is back in command state
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value().ok);
}

TEST(MiningServerTest, StatsFormatsRender) {
  ServerFixture fixture;
  auto client = fixture.Connect();
  auto text = client->Exec("STATS");
  ASSERT_TRUE(text.ok());
  EXPECT_TRUE(text.value().ok);
  auto json = client->Exec("STATS json");
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json.value().payload.find("\"metrics\""), std::string::npos);
  auto prom = client->Exec("STATS prom");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom.value().payload.find("# TYPE setm_srv_requests_total"),
            std::string::npos);
}

TEST(MiningServerTest, GracefulStopWithIdleConnection) {
  auto fixture = std::make_unique<ServerFixture>();
  auto client = fixture->Connect();
  ASSERT_TRUE(client->Exec("PING").ok());
  fixture.reset();  // Stop() inside must return cleanly with a client open
}

TEST(MiningServerTest, ShutdownCancelsParkedJob) {
  IterationGate gate;
  ServerOptions options;
  options.hooks.on_iteration = [&gate](const IterationStats& stats) {
    gate.Hook(stats);
  };
  options.shutdown_grace_ms = 10000;
  auto fixture = std::make_unique<ServerFixture>(options);
  auto client = fixture->Connect();
  ASSERT_TRUE(client->SendLine("MINE sales SUPPORT 30%").ok());
  ASSERT_TRUE(gate.AwaitEntered());

  std::thread stopper([&fixture] { fixture.reset(); });
  gate.Open();  // shutdown cancels the job; the drain completes
  stopper.join();
}

// ------------------------------------------------------- shard sessions

TEST(MiningServerTest, ShardSessionCountsAndFilters) {
  ServerFixture fixture;
  auto client = fixture.Connect();

  // Phase 1, k = 1: the full local item counts of TinyTxns, sorted,
  // min_count = 1 (support is the coordinator's concern, not the shard's).
  auto begin = client->Exec("LCOUNT sales K 1");
  ASSERT_TRUE(begin.ok());
  ASSERT_TRUE(begin.value().ok) << begin.value().info;
  EXPECT_NE(begin.value().info.find("lcount k=1 transactions=10"),
            std::string::npos)
      << begin.value().info;
  EXPECT_EQ(begin.value().payload,
            "0 6\n1 4\n2 4\n3 6\n4 4\n5 3\n6 2\n7 1\n");

  // A malformed phase-2 batch (1-item lines for K 2) is drained and
  // answered with ERR; the run survives.
  auto bad_merge = client->Exec("MERGE K 2\n0\n.");
  ASSERT_TRUE(bad_merge.ok());
  EXPECT_FALSE(bad_merge.value().ok);
  EXPECT_EQ(bad_merge.value().code, "InvalidArgument");

  // Phase 1, k = 2: the local R_1-join candidate counts.
  auto pairs = client->Exec("LCOUNT K 2");
  ASSERT_TRUE(pairs.ok());
  ASSERT_TRUE(pairs.value().ok) << pairs.value().info;
  EXPECT_NE(pairs.value().info.find("lcount k=2 rprime="), std::string::npos);
  // {0,1} occurs in transactions 10, 20 and 30.
  EXPECT_NE(pairs.value().payload.find("0 1 3\n"), std::string::npos)
      << pairs.value().payload;

  // Phase 2, k = 2: the whole global C_2 rides in one request.
  auto merged = client->Exec("MERGE K 2\n0 1\n3 4\n.");
  ASSERT_TRUE(merged.ok());
  ASSERT_TRUE(merged.value().ok) << merged.value().info;
  EXPECT_NE(merged.value().info.find("merge k=2 rows="), std::string::npos);

  // The run continues into k = 3 off the filtered R_2.
  auto triples = client->Exec("LCOUNT K 3");
  ASSERT_TRUE(triples.ok());
  EXPECT_TRUE(triples.value().ok) << triples.value().info;
}

TEST(MiningServerTest, ShardContinuationWithoutRunIsNotFound) {
  ServerFixture fixture;
  auto client = fixture.Connect();

  for (const char* line : {"LCOUNT K 2", "MERGE K 2"}) {
    auto response = client->Exec(line);
    ASSERT_TRUE(response.ok()) << line;
    EXPECT_FALSE(response.value().ok) << line;
    EXPECT_EQ(response.value().code, "NotFound") << line;
    EXPECT_NE(response.value().info.find("no shard run"), std::string::npos)
        << response.value().info;
  }
  auto pong = client->Exec("PING");  // protocol errors, connection alive
  ASSERT_TRUE(pong.ok());
  EXPECT_TRUE(pong.value().ok);
}

TEST(MiningServerTest, UnknownTableNamesAvailableTables) {
  ServerFixture fixture;
  auto client = fixture.Connect();

  // MINE and LCOUNT share the catalog's operator-friendly lookup: the
  // error names the tables that DO exist.
  for (const char* line :
       {"MINE nosuch SUPPORT 2%", "LCOUNT nosuch K 1"}) {
    auto response = client->Exec(line);
    ASSERT_TRUE(response.ok()) << line;
    EXPECT_FALSE(response.value().ok) << line;
    EXPECT_EQ(response.value().code, "NotFound") << line;
    EXPECT_NE(response.value().info.find("available: sales"),
              std::string::npos)
        << response.value().info;
  }
}

}  // namespace
}  // namespace setm::net

// Failure-injection tests: I/O errors at the page layer must surface as
// clean Status errors through every layer above it — no crashes, no
// silent truncation.

#include <gtest/gtest.h>

#include <vector>

#include "exec/exec_context.h"
#include "exec/external_sort.h"
#include "index/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/table_heap.h"

namespace setm {
namespace {

TEST(FaultInjectionTest, BackendFailsAfterBudget) {
  IoStats stats;
  MemoryBackend real(&stats);
  FaultInjectionBackend flaky(&real, 2);
  ASSERT_TRUE(flaky.AllocatePage().ok());
  ASSERT_TRUE(flaky.AllocatePage().ok());
  auto third = flaky.AllocatePage();
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsIOError());
  // Healing restores service.
  flaky.Heal();
  EXPECT_TRUE(flaky.AllocatePage().ok());
}

TEST(FaultInjectionTest, BufferPoolPropagatesReadErrors) {
  IoStats stats;
  MemoryBackend real(&stats);
  PageId id;
  {
    BufferPool warm(&real, 4);
    auto guard = warm.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard.value().id();
  }
  FaultInjectionBackend flaky(&real, 0);
  BufferPool pool(&flaky, 4);
  auto fetch = pool.FetchPage(id);
  ASSERT_FALSE(fetch.ok());
  EXPECT_TRUE(fetch.status().IsIOError());
}

// Regression: a failed dirty write-back during eviction used to orphan the
// victim frame (popped from the LRU, never freed or re-enqueued), silently
// shrinking the pool by one frame per failure. The pool must survive any
// number of failed evictions at full capacity.
TEST(FaultInjectionTest, VictimWriteBackFailureKeepsPoolCapacity) {
  constexpr size_t kFrames = 4;
  IoStats stats;
  MemoryBackend real(&stats);
  // Enough backing pages for one pool-full of dirty pages + replacements.
  for (size_t i = 0; i < 2 * kFrames; ++i) ASSERT_TRUE(real.AllocatePage().ok());

  // Budget covers exactly the initial reads; the eviction write-backs fail.
  FaultInjectionBackend flaky(&real, kFrames);
  BufferPool pool(&flaky, kFrames);
  for (size_t i = 0; i < kFrames; ++i) {
    auto guard = pool.FetchPage(static_cast<PageId>(i));
    ASSERT_TRUE(guard.ok());
    guard.value().MarkDirty();
  }

  // Each fetch of an uncached page needs an eviction whose write-back fails.
  // If the victim leaked, later attempts would shift from IOError to
  // ResourceExhausted as the pool ran out of frames.
  for (size_t attempt = 0; attempt < 2 * kFrames; ++attempt) {
    auto fetch = pool.FetchPage(static_cast<PageId>(kFrames));
    ASSERT_FALSE(fetch.ok());
    EXPECT_TRUE(fetch.status().IsIOError()) << fetch.status().ToString();
  }

  // After healing, the pool must still serve `capacity` concurrent pins.
  flaky.Heal();
  std::vector<PageGuard> guards;
  for (size_t i = 0; i < kFrames; ++i) {
    auto guard = pool.FetchPage(static_cast<PageId>(kFrames + i));
    ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    guards.push_back(std::move(guard).value());
  }
  // And the (capacity+1)-th concurrent pin fails for the *right* reason.
  auto extra = pool.FetchPage(0);
  ASSERT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kResourceExhausted);
}

// Retryable eviction: when the LRU victim's dirty write-back fails, the
// pool must skip that frame (leaving it resident and dirty for a later
// retry) and evict the next LRU candidate instead — a fetch succeeds while
// one poisoned page sits in the pool.
TEST(FaultInjectionTest, EvictionSkipsPoisonedVictim) {
  constexpr size_t kFrames = 3;
  IoStats stats;
  MemoryBackend real(&stats);
  // Backing pages: kFrames resident + 2 replacement targets.
  for (size_t i = 0; i < kFrames + 2; ++i) {
    ASSERT_TRUE(real.AllocatePage().ok());
  }

  FaultInjectionBackend flaky(&real, ~0ull);
  BufferPool pool(&flaky, kFrames);
  // Make page 0 the LRU victim, dirty, with a poisoned write path; the
  // other residents are dirty too but writable.
  for (size_t i = 0; i < kFrames; ++i) {
    auto guard = pool.FetchPage(static_cast<PageId>(i));
    ASSERT_TRUE(guard.ok());
    guard.value().MarkDirty();
  }
  flaky.PoisonWrites(0);

  // The fetch needs an eviction; the LRU victim (page 0) cannot be written
  // back, so the pool must route around it and still succeed.
  auto fetch = pool.FetchPage(static_cast<PageId>(kFrames));
  ASSERT_TRUE(fetch.ok()) << fetch.status().ToString();
  fetch.value().Release();

  // The poisoned page stayed resident (a re-fetch is a cache hit: no read
  // budget is consumed because no ReadPage reaches the backend).
  const uint64_t ops_before = flaky.ops();
  auto poisoned = pool.FetchPage(0);
  ASSERT_TRUE(poisoned.ok());
  EXPECT_EQ(flaky.ops(), ops_before);
  poisoned.value().Release();

  // Once the page heals, its write-back succeeds and it becomes evictable
  // again (fetching two fresh pages forces it out eventually).
  flaky.PoisonWrites(kInvalidPageId);
  auto fetch2 = pool.FetchPage(static_cast<PageId>(kFrames + 1));
  ASSERT_TRUE(fetch2.ok()) << fetch2.status().ToString();
}

// Regression: a failed backend read in FetchPage used to drop the victim
// frame after it had already been detached from the LRU and page table;
// the frame has to return to the free list on that path.
TEST(FaultInjectionTest, ReadFailureReturnsFrameToFreeList) {
  constexpr size_t kFrames = 4;
  IoStats stats;
  MemoryBackend real(&stats);
  for (size_t i = 0; i < kFrames; ++i) ASSERT_TRUE(real.AllocatePage().ok());

  FaultInjectionBackend flaky(&real, 0);  // every read fails
  BufferPool pool(&flaky, kFrames);
  // More failed fetches than frames: if any attempt leaked its frame, the
  // pool would run out and report ResourceExhausted instead of IOError.
  for (size_t attempt = 0; attempt < 2 * kFrames; ++attempt) {
    auto fetch = pool.FetchPage(0);
    ASSERT_FALSE(fetch.ok());
    EXPECT_TRUE(fetch.status().IsIOError()) << fetch.status().ToString();
  }

  flaky.Heal();
  std::vector<PageGuard> guards;
  for (size_t i = 0; i < kFrames; ++i) {
    auto guard = pool.FetchPage(static_cast<PageId>(i));
    ASSERT_TRUE(guard.ok()) << guard.status().ToString();
    guards.push_back(std::move(guard).value());
  }
}

TEST(FaultInjectionTest, TableHeapInsertSurfacesAllocationFailure) {
  IoStats stats;
  MemoryBackend real(&stats);
  FaultInjectionBackend flaky(&real, 4);  // enough for creation only
  BufferPool pool(&flaky, 4);
  auto heap = TableHeap::Create(&pool);
  ASSERT_TRUE(heap.ok());
  // Fill the first page; the chain extension must eventually fail cleanly.
  const std::string record(1000, 'x');
  Status last = Status::OK();
  for (int i = 0; i < 100 && last.ok(); ++i) {
    last = heap->Insert(record).status();
  }
  EXPECT_TRUE(last.IsIOError());
}

TEST(FaultInjectionTest, ExternalSortSpillFailureIsReported) {
  IoStats stats;
  MemoryBackend real(&stats);
  FaultInjectionBackend flaky(&real, 8);
  BufferPool temp_pool(&flaky, 8);
  ExecContext ctx;
  ctx.temp_pool = &temp_pool;
  ctx.sort_memory_bytes = 128;  // spill almost immediately

  Schema schema({Column{"a", ValueType::kInt32}});
  ExternalSort sort(ctx, schema, TupleComparator({0}));
  Status last = Status::OK();
  for (int i = 0; i < 10000 && last.ok(); ++i) {
    last = sort.Add(Tuple({Value::Int32(i)}));
  }
  if (last.ok()) {
    auto finish = sort.Finish();
    last = finish.ok() ? Status::OK() : finish.status();
  }
  EXPECT_TRUE(last.IsIOError()) << last.ToString();
}

TEST(FaultInjectionTest, BPlusTreeInsertFailureIsReported) {
  IoStats stats;
  MemoryBackend real(&stats);
  FaultInjectionBackend flaky(&real, 64);
  BufferPool pool(&flaky, 8);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Status last = Status::OK();
  for (uint64_t k = 0; k < 100000 && last.ok(); ++k) {
    last = tree->Insert(k, 0);
  }
  EXPECT_TRUE(last.IsIOError()) << last.ToString();
}

TEST(FaultInjectionTest, HealedBackendResumesCleanly) {
  IoStats stats;
  MemoryBackend real(&stats);
  FaultInjectionBackend flaky(&real, 10);
  BufferPool pool(&flaky, 4);
  auto heap = TableHeap::Create(&pool);
  ASSERT_TRUE(heap.ok());
  const std::string record(1500, 'y');
  Status last = Status::OK();
  int inserted = 0;
  for (int i = 0; i < 50 && last.ok(); ++i) {
    last = heap->Insert(record).status();
    if (last.ok()) ++inserted;
  }
  ASSERT_TRUE(last.IsIOError());
  flaky.Heal();
  // After healing, the heap accepts inserts again and earlier records are
  // still readable through iteration.
  ASSERT_TRUE(heap->Insert(record).ok());
  int count = 0;
  for (auto it = heap->Begin(); it.Valid();) {
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, inserted + 1);
}

}  // namespace
}  // namespace setm

// Failure-injection tests: I/O errors at the page layer must surface as
// clean Status errors through every layer above it — no crashes, no
// silent truncation.

#include <gtest/gtest.h>

#include "exec/exec_context.h"
#include "exec/external_sort.h"
#include "index/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/table_heap.h"

namespace setm {
namespace {

TEST(FaultInjectionTest, BackendFailsAfterBudget) {
  IoStats stats;
  MemoryBackend real(&stats);
  FaultInjectionBackend flaky(&real, 2);
  ASSERT_TRUE(flaky.AllocatePage().ok());
  ASSERT_TRUE(flaky.AllocatePage().ok());
  auto third = flaky.AllocatePage();
  ASSERT_FALSE(third.ok());
  EXPECT_TRUE(third.status().IsIOError());
  // Healing restores service.
  flaky.Heal();
  EXPECT_TRUE(flaky.AllocatePage().ok());
}

TEST(FaultInjectionTest, BufferPoolPropagatesReadErrors) {
  IoStats stats;
  MemoryBackend real(&stats);
  PageId id;
  {
    BufferPool warm(&real, 4);
    auto guard = warm.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard.value().id();
  }
  FaultInjectionBackend flaky(&real, 0);
  BufferPool pool(&flaky, 4);
  auto fetch = pool.FetchPage(id);
  ASSERT_FALSE(fetch.ok());
  EXPECT_TRUE(fetch.status().IsIOError());
}

TEST(FaultInjectionTest, TableHeapInsertSurfacesAllocationFailure) {
  IoStats stats;
  MemoryBackend real(&stats);
  FaultInjectionBackend flaky(&real, 4);  // enough for creation only
  BufferPool pool(&flaky, 4);
  auto heap = TableHeap::Create(&pool);
  ASSERT_TRUE(heap.ok());
  // Fill the first page; the chain extension must eventually fail cleanly.
  const std::string record(1000, 'x');
  Status last = Status::OK();
  for (int i = 0; i < 100 && last.ok(); ++i) {
    last = heap->Insert(record).status();
  }
  EXPECT_TRUE(last.IsIOError());
}

TEST(FaultInjectionTest, ExternalSortSpillFailureIsReported) {
  IoStats stats;
  MemoryBackend real(&stats);
  FaultInjectionBackend flaky(&real, 8);
  BufferPool temp_pool(&flaky, 8);
  ExecContext ctx;
  ctx.temp_pool = &temp_pool;
  ctx.sort_memory_bytes = 128;  // spill almost immediately

  Schema schema({Column{"a", ValueType::kInt32}});
  ExternalSort sort(ctx, schema, TupleComparator({0}));
  Status last = Status::OK();
  for (int i = 0; i < 10000 && last.ok(); ++i) {
    last = sort.Add(Tuple({Value::Int32(i)}));
  }
  if (last.ok()) {
    auto finish = sort.Finish();
    last = finish.ok() ? Status::OK() : finish.status();
  }
  EXPECT_TRUE(last.IsIOError()) << last.ToString();
}

TEST(FaultInjectionTest, BPlusTreeInsertFailureIsReported) {
  IoStats stats;
  MemoryBackend real(&stats);
  FaultInjectionBackend flaky(&real, 64);
  BufferPool pool(&flaky, 8);
  auto tree = BPlusTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Status last = Status::OK();
  for (uint64_t k = 0; k < 100000 && last.ok(); ++k) {
    last = tree->Insert(k, 0);
  }
  EXPECT_TRUE(last.IsIOError()) << last.ToString();
}

TEST(FaultInjectionTest, HealedBackendResumesCleanly) {
  IoStats stats;
  MemoryBackend real(&stats);
  FaultInjectionBackend flaky(&real, 10);
  BufferPool pool(&flaky, 4);
  auto heap = TableHeap::Create(&pool);
  ASSERT_TRUE(heap.ok());
  const std::string record(1500, 'y');
  Status last = Status::OK();
  int inserted = 0;
  for (int i = 0; i < 50 && last.ok(); ++i) {
    last = heap->Insert(record).status();
    if (last.ok()) ++inserted;
  }
  ASSERT_TRUE(last.IsIOError());
  flaky.Heal();
  // After healing, the heap accepts inserts again and earlier records are
  // still readable through iteration.
  ASSERT_TRUE(heap->Insert(record).ok());
  int count = 0;
  for (auto it = heap->Begin(); it.Valid();) {
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, inserted + 1);
}

}  // namespace
}  // namespace setm

// Tests for the customer-class extension (the paper's announced future
// work): per-class frequent itemsets from one set-oriented pass.

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/classed_mining.h"
#include "core/paper_example.h"
#include "core/rules.h"
#include "datagen/quest_generator.h"

namespace setm {
namespace {

// Partition-equivalence: classed mining over labeled transactions must
// equal mining each class's transactions separately.
class ClassedEquivalenceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(ClassedEquivalenceTest, MatchesPerPartitionMining) {
  QuestOptions gen;
  gen.seed = GetParam();
  gen.num_transactions = 300;
  gen.avg_transaction_size = 5;
  gen.num_items = 20;
  TransactionDb txns = QuestGenerator(gen).Generate();

  // Assign classes round-robin: 0, 1, 2.
  CustomerClasses classes;
  std::map<ClassId, TransactionDb> partitions;
  for (size_t i = 0; i < txns.size(); ++i) {
    const ClassId cls = static_cast<ClassId>(i % 3);
    classes.assignments.emplace_back(txns[i].id, cls);
    partitions[cls].push_back(txns[i]);
  }

  MiningOptions options;
  options.min_support = 0.05;

  Database db;
  ClassedSetmMiner miner(&db);
  auto classed = miner.Mine(txns, classes, options);
  ASSERT_TRUE(classed.ok()) << classed.status().ToString();

  for (auto& [cls, partition] : partitions) {
    BruteForceMiner oracle;
    auto expected = oracle.Mine(partition, options);
    ASSERT_TRUE(expected.ok());
    auto it = classed.value().per_class.find(cls);
    ASSERT_NE(it, classed.value().per_class.end()) << "class " << cls;
    EXPECT_TRUE(it->second == expected.value().itemsets)
        << "class " << cls << ": classed found " << it->second.TotalPatterns()
        << ", partition oracle " << expected.value().itemsets.TotalPatterns();
    EXPECT_EQ(it->second.num_transactions, partition.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassedEquivalenceTest,
                         testing::Values(101, 102, 103, 104));

TEST(ClassedMiningTest, UnlabeledTransactionsFallIntoDefaultClass) {
  Database db;
  ClassedSetmMiner miner(&db);
  auto result = miner.Mine(PaperExampleTransactions(), CustomerClasses{},
                           PaperExampleOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().per_class.size(), 1u);
  const FrequentItemsets& sets =
      result.value().per_class.at(CustomerClasses::kDefaultClass);
  // Identical to plain SETM on the paper example.
  EXPECT_EQ(sets.OfSize(1).size(), 6u);
  EXPECT_EQ(sets.OfSize(2).size(), 6u);
  EXPECT_EQ(sets.OfSize(3).size(), 1u);
}

TEST(ClassedMiningTest, PerClassSupportThresholds) {
  // Class 1: transactions 10..50 (5 txns); class 2: 60..99 (5 txns).
  // Pattern DEF occurs 3x, all in class 2 -> frequent there at 60%,
  // absent from class 1.
  CustomerClasses classes;
  for (TransactionId tid : {10, 20, 30, 40, 50}) {
    classes.assignments.emplace_back(tid, 1);
  }
  for (TransactionId tid : {60, 70, 80, 90, 99}) {
    classes.assignments.emplace_back(tid, 2);
  }
  MiningOptions options;
  options.min_support = 0.60;  // 3 of 5 per class
  Database db;
  ClassedSetmMiner miner(&db);
  auto result = miner.Mine(PaperExampleTransactions(), classes, options);
  ASSERT_TRUE(result.ok());
  const auto& class1 = result.value().per_class.at(1);
  const auto& class2 = result.value().per_class.at(2);
  EXPECT_EQ(class2.CountOf({3, 4, 5}), 3);  // DEF in class 2
  EXPECT_EQ(class1.CountOf({3, 4, 5}), 0);
  // AB occurs in 10, 20, 30 — all class 1, 3/5 = 60% there.
  EXPECT_EQ(class1.CountOf({0, 1}), 3);
  EXPECT_EQ(class2.CountOf({0, 1}), 0);
}

TEST(ClassedMiningTest, DuplicateAssignmentRejected) {
  CustomerClasses classes;
  classes.assignments.emplace_back(10, 1);
  classes.assignments.emplace_back(10, 2);
  Database db;
  ClassedSetmMiner miner(&db);
  auto result =
      miner.Mine(PaperExampleTransactions(), classes, PaperExampleOptions());
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ClassedMiningTest, RulesPerClass) {
  CustomerClasses classes;
  for (TransactionId tid : {80, 90, 99}) classes.assignments.emplace_back(tid, 7);
  MiningOptions options;
  options.min_support = 0.9;  // within class 7: all three DEF transactions
  options.min_confidence = 0.9;
  Database db;
  ClassedSetmMiner miner(&db);
  auto result = miner.Mine(PaperExampleTransactions(), classes, options);
  ASSERT_TRUE(result.ok());
  auto rules =
      GenerateRules(result.value().per_class.at(7), options).value();
  // DEF is 100% of class 7: every rule over {D,E,F} holds at 100%.
  EXPECT_EQ(rules.size(), 9u);  // 3 pairs x 2 + 1 triple x 3
}

TEST(ClassedMiningTest, HeapBackingAgreesWithMemory) {
  QuestOptions gen;
  gen.seed = 321;
  gen.num_transactions = 200;
  gen.avg_transaction_size = 4;
  gen.num_items = 15;
  TransactionDb txns = QuestGenerator(gen).Generate();
  CustomerClasses classes;
  for (size_t i = 0; i < txns.size(); ++i) {
    classes.assignments.emplace_back(txns[i].id, static_cast<ClassId>(i % 2));
  }
  MiningOptions options;
  options.min_support = 0.05;
  Database db1, db2;
  auto mem = ClassedSetmMiner(&db1, SetmOptions{TableBacking::kMemory})
                 .Mine(txns, classes, options);
  auto heap = ClassedSetmMiner(&db2, SetmOptions{TableBacking::kHeap})
                  .Mine(txns, classes, options);
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(heap.ok());
  ASSERT_EQ(mem.value().per_class.size(), heap.value().per_class.size());
  for (auto& [cls, sets] : mem.value().per_class) {
    EXPECT_TRUE(sets == heap.value().per_class.at(cls)) << "class " << cls;
  }
}

}  // namespace
}  // namespace setm

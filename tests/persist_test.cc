// Tests for the durable catalog subsystem (src/persist): superblock and
// manifest codecs, and the Database-level create/populate/close/reopen
// round trip — including the corruption paths that must fail with a
// descriptive Status instead of reinitializing the file.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/setm.h"
#include "datagen/quest_generator.h"
#include "incremental/delta_miner.h"
#include "incremental/itemset_store.h"
#include "persist/catalog_codec.h"
#include "persist/manifest.h"
#include "persist/superblock.h"
#include "relational/database.h"
#include "sql/engine.h"

namespace setm {
namespace {

Schema TwoIntSchema() {
  return Schema(
      {Column{"a", ValueType::kInt32}, Column{"b", ValueType::kInt32}});
}

/// A scratch database file path (plus its WAL sidecar), removed on
/// destruction.
class TempDbFile {
 public:
  explicit TempDbFile(const std::string& name)
      : path_(testing::TempDir() + "/" + name) {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }
  ~TempDbFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
  }
  const std::string& path() const { return path_; }
  std::string wal_path() const { return path_ + ".wal"; }

 private:
  std::string path_;
};

DatabaseOptions FileOptions(const TempDbFile& file) {
  DatabaseOptions options;
  options.file_path = file.path();
  return options;
}

// --------------------------------------------------------------------------
// Record codec
// --------------------------------------------------------------------------

TEST(RecordCodecTest, RoundTripsAllWidths) {
  RecordWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xCDEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutString("schema");
  w.PutString("");

  RecordReader r(w.bytes());
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU16().value(), 0xCDEF);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.GetString().value(), "schema");
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(RecordCodecTest, TruncationIsCorruptionNotUb) {
  RecordWriter w;
  w.PutU32(7);
  RecordReader r(std::string_view(w.bytes()).substr(0, 2));
  auto v = r.GetU32();
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
}

TEST(RecordCodecTest, CatalogSnapshotRoundTrip) {
  CatalogSnapshot snapshot;
  PersistedTableMeta heap;
  heap.name = "sales";
  heap.backing = TableBacking::kHeap;
  heap.schema = SetmMiner::SalesSchema();
  heap.first_page = 3;
  heap.last_page = 17;
  heap.num_pages = 9;
  heap.row_count = 1234;
  heap.size_bytes = 9872;
  snapshot.tables.push_back(heap);
  PersistedTableMeta mem;
  mem.name = "scratch";
  mem.backing = TableBacking::kMemory;
  mem.schema = Schema({Column{"s", ValueType::kString},
                       Column{"d", ValueType::kDouble}});
  snapshot.tables.push_back(mem);
  snapshot.free_pages = {5, 12, 40};

  auto decoded = DecodeCatalogSnapshot(EncodeCatalogSnapshot(snapshot));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().tables.size(), 2u);
  const PersistedTableMeta& h = decoded.value().tables[0];
  EXPECT_EQ(h.name, "sales");
  EXPECT_EQ(h.backing, TableBacking::kHeap);
  EXPECT_EQ(h.schema, SetmMiner::SalesSchema());
  EXPECT_EQ(h.first_page, 3u);
  EXPECT_EQ(h.last_page, 17u);
  EXPECT_EQ(h.num_pages, 9u);
  EXPECT_EQ(h.row_count, 1234u);
  EXPECT_EQ(h.size_bytes, 9872u);
  const PersistedTableMeta& m = decoded.value().tables[1];
  EXPECT_EQ(m.name, "scratch");
  EXPECT_EQ(m.backing, TableBacking::kMemory);
  EXPECT_EQ(m.schema.NumColumns(), 2u);
  EXPECT_EQ(decoded.value().free_pages, (std::vector<PageId>{5, 12, 40}));
}

TEST(RecordCodecTest, SnapshotRejectsTruncationAndGarbage) {
  CatalogSnapshot snapshot;
  PersistedTableMeta t;
  t.name = "t";
  t.schema = TwoIntSchema();
  snapshot.tables.push_back(t);
  std::string bytes = EncodeCatalogSnapshot(snapshot);

  auto truncated = DecodeCatalogSnapshot(
      std::string_view(bytes).substr(0, bytes.size() - 3));
  ASSERT_FALSE(truncated.ok());
  EXPECT_EQ(truncated.status().code(), StatusCode::kCorruption);

  auto trailing = DecodeCatalogSnapshot(bytes + "xx");
  ASSERT_FALSE(trailing.ok());
  EXPECT_EQ(trailing.status().code(), StatusCode::kCorruption);
}

// --------------------------------------------------------------------------
// Superblock codec
// --------------------------------------------------------------------------

TEST(SuperblockTest, RoundTrip) {
  Superblock sb;
  sb.page_count = 42;
  sb.manifest_root = 7;
  sb.spare_manifest_root = 9;
  sb.checkpoint_seq = 13;
  Page page;
  EncodeSuperblock(sb, &page);
  Superblock out;
  ASSERT_TRUE(DecodeSuperblock(page, &out).ok());
  EXPECT_EQ(out.format_version, kFormatVersion);
  EXPECT_EQ(out.page_count, 42u);
  EXPECT_EQ(out.manifest_root, 7u);
  EXPECT_EQ(out.spare_manifest_root, 9u);
  EXPECT_EQ(out.checkpoint_seq, 13u);
}

TEST(SuperblockTest, RejectsWrongMagic) {
  Page page;
  page.Clear();
  std::memcpy(page.data, "NOTADB!!", 8);
  Superblock out;
  Status s = DecodeSuperblock(page, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("magic"), std::string::npos);
}

TEST(SuperblockTest, RejectsUnsupportedVersion) {
  Superblock sb;
  Page page;
  EncodeSuperblock(sb, &page);
  page.data[8] = 9;  // format_version lives right after the 8-byte magic
  Superblock out;
  Status s = DecodeSuperblock(page, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotSupported);
  EXPECT_NE(s.message().find("version"), std::string::npos);
}

TEST(SuperblockTest, RejectsChecksumMismatch) {
  Superblock sb;
  sb.page_count = 5;
  Page page;
  EncodeSuperblock(sb, &page);
  page.data[12] ^= 0x01;  // flip a bit inside page_count
  Superblock out;
  Status s = DecodeSuperblock(page, &out);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.message().find("checksum"), std::string::npos);
}

// --------------------------------------------------------------------------
// Manifest chain
// --------------------------------------------------------------------------

TEST(ManifestTest, MultiPagePayloadRoundTripsAndReusesChain) {
  Database db;  // memory backend is fine: the manifest only needs a pool
  std::string payload(3 * kManifestPageCapacity + 123, 'x');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>('a' + i % 17);
  }
  std::vector<PageId> chain;
  auto root = WriteManifest(db.pool(), payload, &chain);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(chain.size(), 4u);

  auto read = ReadManifest(db.pool(), root.value(),
                           db.pool()->backend()->NumPages(), nullptr);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload);

  // Rewriting a smaller payload reuses the head of the old chain and does
  // not allocate.
  const uint64_t pages_before = db.pool()->backend()->NumPages();
  std::string smaller(kManifestPageCapacity / 2, 'y');
  auto root2 = WriteManifest(db.pool(), smaller, &chain);
  ASSERT_TRUE(root2.ok());
  EXPECT_EQ(root2.value(), root.value());
  EXPECT_EQ(chain.size(), 1u);
  EXPECT_EQ(db.pool()->backend()->NumPages(), pages_before);
  auto read2 = ReadManifest(db.pool(), root2.value(),
                            db.pool()->backend()->NumPages(), nullptr);
  ASSERT_TRUE(read2.ok());
  EXPECT_EQ(read2.value(), smaller);
}

TEST(ManifestTest, NonManifestPageIsCorruption) {
  Database db;
  auto guard = db.pool()->NewPage();
  ASSERT_TRUE(guard.ok());
  const PageId id = guard.value().id();
  guard.value().Release();
  auto read = ReadManifest(db.pool(), id, db.pool()->backend()->NumPages(),
                           nullptr);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
}

// --------------------------------------------------------------------------
// Database reopen round trips
// --------------------------------------------------------------------------

class PersistReopenTest : public testing::TestWithParam<TableBacking> {};

INSTANTIATE_TEST_SUITE_P(Backings, PersistReopenTest,
                         testing::Values(TableBacking::kMemory,
                                         TableBacking::kHeap),
                         [](const auto& param_info) {
                           return param_info.param == TableBacking::kHeap
                                      ? "Heap"
                                      : "Memory";
                         });

TEST_P(PersistReopenTest, CreatePopulateCloseReopen) {
  TempDbFile file("persist_roundtrip.db");
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto t = (*db)->catalog()->CreateTable("t", TwoIntSchema(), GetParam());
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(
          t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i * 2)}))
              .ok());
    }
  }  // destructor checkpoints + flushes

  auto db = Database::Open(FileOptions(file));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto t = (*db)->catalog()->GetTable("t");
  ASSERT_TRUE(t.ok()) << "catalog lost table across reopen";
  EXPECT_EQ(t.value()->schema(), TwoIntSchema());
  if (GetParam() == TableBacking::kHeap) {
    // Heap rows live in the file and come back; scan and verify contents.
    ASSERT_EQ(t.value()->num_rows(), 2000u);
    auto it = t.value()->Scan();
    Tuple row;
    int expect = 0;
    while (true) {
      auto more = it->Next(&row);
      ASSERT_TRUE(more.ok());
      if (!more.value()) break;
      EXPECT_EQ(row.value(0).AsInt32(), expect);
      EXPECT_EQ(row.value(1).AsInt32(), expect * 2);
      ++expect;
    }
    EXPECT_EQ(expect, 2000);
  } else {
    // Memory rows never reach the file: schema survives, rows do not.
    EXPECT_EQ(t.value()->num_rows(), 0u);
  }
}

TEST_P(PersistReopenTest, InsertAcrossThreeGenerations) {
  if (GetParam() == TableBacking::kMemory) {
    GTEST_SKIP() << "memory rows do not persist";
  }
  TempDbFile file("persist_generations.db");
  for (int generation = 0; generation < 3; ++generation) {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Table* t;
    if (generation == 0) {
      auto created =
          (*db)->catalog()->CreateTable("t", TwoIntSchema(), GetParam());
      ASSERT_TRUE(created.ok());
      t = created.value();
    } else {
      auto found = (*db)->catalog()->GetTable("t");
      ASSERT_TRUE(found.ok());
      t = found.value();
    }
    EXPECT_EQ(t->num_rows(), static_cast<uint64_t>(generation) * 100);
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(t->Insert(Tuple({Value::Int32(generation),
                                   Value::Int32(i)}))
                      .ok());
    }
  }
  auto db = Database::Open(FileOptions(file));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->catalog()->GetTable("t").value()->num_rows(), 300u);
}

TEST(PersistTest, DropTableDoesNotResurrectOnReopen) {
  TempDbFile file("persist_drop.db");
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->catalog()
                    ->CreateTable("keep", TwoIntSchema(), TableBacking::kHeap)
                    .ok());
    ASSERT_TRUE((*db)->catalog()
                    ->CreateTable("drop_me", TwoIntSchema(),
                                  TableBacking::kHeap)
                    .ok());
    ASSERT_TRUE((*db)->catalog()->DropTable("drop_me").ok());
  }
  auto db = Database::Open(FileOptions(file));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)->catalog()->HasTable("keep"));
  EXPECT_FALSE((*db)->catalog()->HasTable("drop_me"));
  // Creation order survives too.
  EXPECT_EQ((*db)->catalog()->TableNames(),
            std::vector<std::string>{"keep"});
}

TEST(PersistTest, EmptyDatabaseReopensEmpty) {
  TempDbFile file("persist_empty.db");
  { ASSERT_TRUE(Database::Open(FileOptions(file)).ok()); }
  auto db = Database::Open(FileOptions(file));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_TRUE((*db)->catalog()->TableNames().empty());
  EXPECT_GT((*db)->checkpoint_count(), 0u);
}

TEST(PersistTest, ExplicitCheckpointKeepsFileSizeStable) {
  TempDbFile file("persist_checkpoint.db");
  auto db = Database::Open(FileOptions(file));
  ASSERT_TRUE(db.ok());
  auto t = (*db)->catalog()->CreateTable("t", TwoIntSchema(),
                                         TableBacking::kHeap);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(
      t.value()->Insert(Tuple({Value::Int32(1), Value::Int32(2)})).ok());
  // Checkpoints alternate between two chains; once both exist, repeated
  // checkpoints ping-pong between them with no page growth.
  ASSERT_TRUE((*db)->Checkpoint().ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  const uint64_t pages = (*db)->pool()->backend()->NumPages();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  EXPECT_EQ((*db)->pool()->backend()->NumPages(), pages);
}

TEST(PersistTest, ReopenedProcessesReuseManifestChains) {
  TempDbFile file("persist_chain_reuse.db");
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->catalog()
                    ->CreateTable("t", TwoIntSchema(), TableBacking::kHeap)
                    .ok());
    // Establish both chains before measuring.
    ASSERT_TRUE((*db)->Checkpoint().ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  uint64_t pages_after_first_close = 0;
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok());
    pages_after_first_close = (*db)->pool()->backend()->NumPages();
  }
  // Several more process generations, each checkpointing on close: the
  // retired chain's root is persisted in the superblock, so reopens reuse
  // it instead of orphaning one chain per generation.
  for (int generation = 0; generation < 5; ++generation) {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(FileOptions(file));
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->pool()->backend()->NumPages(), pages_after_first_close)
      << "file grew across reopen generations with an unchanged catalog";
}

// --------------------------------------------------------------------------
// Corrupt / foreign files are rejected, never reinitialized
// --------------------------------------------------------------------------

namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(PersistTest, RejectsTruncatedSuperblockWithoutModifyingFile) {
  TempDbFile file("persist_tiny.db");
  WriteAll(file.path(), "not nearly a page of bytes");
  const std::string before = ReadAll(file.path());
  auto db = Database::Open(FileOptions(file));
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
  EXPECT_NE(db.status().message().find("too small"), std::string::npos);
  EXPECT_EQ(ReadAll(file.path()), before) << "open modified a rejected file";
}

TEST(PersistTest, RejectsForeignFileWithoutModifyingFile) {
  TempDbFile file("persist_foreign.db");
  WriteAll(file.path(), std::string(2 * kPageSize, '\x5A'));
  const std::string before = ReadAll(file.path());
  auto db = Database::Open(FileOptions(file));
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
  EXPECT_NE(db.status().message().find("magic"), std::string::npos);
  EXPECT_EQ(ReadAll(file.path()), before);
}

TEST(PersistTest, RejectsVersionMismatchWithoutModifyingFile) {
  TempDbFile file("persist_version.db");
  { ASSERT_TRUE(Database::Open(FileOptions(file)).ok()); }
  std::string bytes = ReadAll(file.path());
  bytes[8] = 9;  // format_version byte
  WriteAll(file.path(), bytes);
  auto db = Database::Open(FileOptions(file));
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(db.status().message().find("version"), std::string::npos);
  EXPECT_EQ(ReadAll(file.path()), bytes);
}

TEST(PersistTest, RejectsTruncatedDatabaseWithoutModifyingFile) {
  TempDbFile file("persist_truncated.db");
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok());
    auto t = (*db)->catalog()->CreateTable("t", TwoIntSchema(),
                                           TableBacking::kHeap);
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < 5000; ++i) {
      ASSERT_TRUE(
          t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
    }
  }
  std::string bytes = ReadAll(file.path());
  ASSERT_GT(bytes.size(), 3 * kPageSize);
  const std::string cut = bytes.substr(0, 3 * kPageSize);
  WriteAll(file.path(), cut);
  auto db = Database::Open(FileOptions(file));
  ASSERT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
  EXPECT_NE(db.status().message().find("truncated"), std::string::npos);
  EXPECT_EQ(ReadAll(file.path()), cut);
}

// A crash after *committed* appends (rows in the WAL with a synced commit
// record, manifest stale) must lose nothing: replay restores the pages and
// the heap chain holds more rows than the manifest records — the walk's
// counts win and the table opens with every committed row.
TEST(PersistTest, ReopenReplaysCommittedUncheckpointedAppends) {
  TempDbFile file("persist_crash_appends.db");
  TempDbFile crashed("persist_crash_appends_snapshot.db");
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok());
    auto t = (*db)->catalog()->CreateTable("t", TwoIntSchema(),
                                           TableBacking::kHeap);
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());  // manifest records 100 rows
    for (int i = 100; i < 150; ++i) {       // 50 more, never checkpointed
      ASSERT_TRUE(
          t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
    }
    ASSERT_TRUE((*db)->Commit().ok());  // rows + commit record in the WAL
    // Snapshot main file and WAL as a crash would leave them: main file
    // stale (immutable between checkpoints), committed rows only in the
    // log. (The destructor of `db` would checkpoint; the copy escapes it.)
    WriteAll(crashed.path(), ReadAll(file.path()));
    WriteAll(crashed.wal_path(), ReadAll(file.wal_path()));
  }
  auto db = Database::Open(FileOptions(crashed));
  ASSERT_TRUE(db.ok()) << "crash image refused to open: "
                       << db.status().ToString();
  auto t = (*db)->catalog()->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->num_rows(), 150u) << "committed appends were lost";
}

// The same crash image *without* the WAL (or with the batch never
// committed) rolls back to the checkpointed 100 rows — the main file alone
// is always the last checkpoint's image, never a torn mix.
TEST(PersistTest, ReopenWithoutWalRollsBackToCheckpoint) {
  TempDbFile file("persist_crash_nowal.db");
  TempDbFile crashed("persist_crash_nowal_snapshot.db");
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok());
    auto t = (*db)->catalog()->CreateTable("t", TwoIntSchema(),
                                           TableBacking::kHeap);
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    for (int i = 100; i < 150; ++i) {
      ASSERT_TRUE(
          t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
    }
    ASSERT_TRUE((*db)->Commit().ok());
    WriteAll(crashed.path(), ReadAll(file.path()));  // WAL "lost"
  }
  auto db = Database::Open(FileOptions(crashed));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto t = (*db)->catalog()->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->num_rows(), 100u)
      << "main file held rows that were never checkpointed into it";
}

// The whole of ItemsetStore::Save — K+1 DDL statements — runs under one
// checkpoint deferral: a single durable transition from old store to new,
// never an intermediate image, and none of the per-DDL flush storms.
TEST(PersistTest, ItemsetStoreSaveCheckpointsOnce) {
  TempDbFile file("persist_save_once.db");
  auto db = Database::Open(FileOptions(file));
  ASSERT_TRUE(db.ok());

  FrequentItemsets itemsets;
  itemsets.Add({1}, 10);
  itemsets.Add({2}, 8);
  itemsets.Add({1, 2}, 6);
  itemsets.Add({1, 2, 3}, 4);  // 3 level tables + meta = 4 DDLs
  itemsets.num_transactions = 12;
  StoredRunMeta meta;
  meta.num_transactions = 12;
  meta.min_support_count = 2;

  ItemsetStore store(db->get(), "fi", TableBacking::kHeap);
  const uint64_t before = (*db)->checkpoint_count();
  ASSERT_TRUE(store.Save(itemsets, meta).ok());
  EXPECT_EQ((*db)->checkpoint_count(), before + 1);

  // Re-saving (drop of 4 + create of 4) is also one checkpoint.
  const uint64_t before_resave = (*db)->checkpoint_count();
  ASSERT_TRUE(store.Save(itemsets, meta).ok());
  EXPECT_EQ((*db)->checkpoint_count(), before_resave + 1);

  auto loaded = store.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().itemsets == itemsets);
}

// --------------------------------------------------------------------------
// Cross-"process" mining workflows (close + fresh Open = new process)
// --------------------------------------------------------------------------

TransactionDb MakeQuestDb(uint64_t seed, uint32_t num_transactions) {
  QuestOptions gen;
  gen.seed = seed;
  gen.num_transactions = num_transactions;
  gen.avg_transaction_size = 5;
  gen.num_items = 20;
  gen.num_patterns = 15;
  return QuestGenerator(gen).Generate();
}

TEST(PersistTest, ItemsetStoreSurvivesReopenAndFeedsDeltaMiner) {
  TempDbFile file("persist_store.db");
  TransactionDb base = MakeQuestDb(814, 200);
  MiningOptions options;
  options.min_support = 0.05;

  FrequentItemsets stored_before;
  // Process A: load SALES, mine, store, close.
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok());
    auto sales = LoadSalesTable(db->get(), "sales", base,
                                TableBacking::kHeap);
    ASSERT_TRUE(sales.ok());
    SetmMiner miner(db->get(), SetmOptions{TableBacking::kHeap});
    auto mined = miner.MineTable(*sales.value(), options);
    ASSERT_TRUE(mined.ok());
    stored_before = mined.value().itemsets;
    ItemsetStore store(db->get(), "fi", TableBacking::kHeap);
    ASSERT_TRUE(store
                    .Save(mined.value().itemsets,
                          MakeRunMeta(mined.value().itemsets, options,
                                      MaxTransactionId(base), "sales"))
                    .ok());
  }

  // Process B: reopen, load the store (identical), run a delta batch.
  TransactionDb batch = MakeQuestDb(815, 20);
  for (Transaction& t : batch) t.id += MaxTransactionId(base);
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ItemsetStore store(db->get(), "fi", TableBacking::kHeap);
    ASSERT_TRUE(store.Exists());
    auto loaded = store.Load();
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(loaded.value().itemsets == stored_before)
        << "stored run changed across restart";
    EXPECT_EQ(loaded.value().meta.source_table, "sales");

    auto sales = (*db)->catalog()->GetTable("sales");
    ASSERT_TRUE(sales.ok());
    DeltaMiner miner(db->get());
    auto updated =
        miner.AppendAndUpdate(&store, sales.value(), batch, options);
    ASSERT_TRUE(updated.ok()) << updated.status().ToString();
    EXPECT_FALSE(updated.value().full_remine);

    // Identity: the cross-process incremental result equals a one-process
    // full remine of the combined database.
    TransactionDb combined = base;
    combined.insert(combined.end(), batch.begin(), batch.end());
    Database mem_db;
    auto remined = SetmMiner(&mem_db).Mine(combined, options);
    ASSERT_TRUE(remined.ok());
    EXPECT_TRUE(updated.value().result.itemsets ==
                remined.value().itemsets)
        << "cross-process incremental result diverged from full remine";
  }

  // Process C: the updated store reopens with the combined result and the
  // SQL engine can scan the reopened relations.
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok());
    ItemsetStore store(db->get(), "fi", TableBacking::kHeap);
    auto loaded = store.Load();
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().itemsets.num_transactions,
              static_cast<uint64_t>(220));

    sql::SqlEngine engine(db->get());
    auto rows = engine.Execute("SELECT item1, support FROM fi_f1");
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows.value().rows.size(),
              loaded.value().itemsets.OfSize(1).size());
  }
}

// --------------------------------------------------------------------------
// Unlogged tables
// --------------------------------------------------------------------------

TEST(UnloggedTest, WritesBypassTheWalAndTheTableReopensEmpty) {
  TempDbFile logged_file("unlogged_control.db");
  TempDbFile unlogged_file("unlogged_bypass.db");

  // Control: the same 2000 rows into a logged table. Commit() flushes every
  // dirty page into the WAL sidecar, so the log carries the table's pages.
  uint64_t logged_wal_bytes = 0;
  {
    auto db = Database::Open(FileOptions(logged_file));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto t = (*db)->catalog()->CreateTable("t", TwoIntSchema(),
                                           TableBacking::kHeap);
    ASSERT_TRUE(t.ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(
          t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
    }
    ASSERT_TRUE((*db)->Commit().ok());
    logged_wal_bytes = ReadAll(logged_file.wal_path()).size();
  }

  // Same load into an unlogged table: its pages go straight to the main
  // file, so the flushed WAL stays a small fraction of the control's.
  uint64_t unlogged_wal_bytes = 0;
  {
    auto db = Database::Open(FileOptions(unlogged_file));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto t = (*db)->catalog()->CreateTable(
        "t", TwoIntSchema(), TableBacking::kHeap, /*unlogged=*/true);
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE(t.value()->unlogged());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(
          t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
    }
    EXPECT_EQ(t.value()->num_rows(), 2000u);
    ASSERT_TRUE((*db)->Commit().ok());
    unlogged_wal_bytes = ReadAll(unlogged_file.wal_path()).size();
  }
  ASSERT_GT(logged_wal_bytes, 0u);
  EXPECT_LT(unlogged_wal_bytes, logged_wal_bytes / 4)
      << "unlogged pages reached the write-ahead log";

  // Reopen: the unlogged table survives in the catalog — name, schema and
  // attribute — but, like a crash-recovered PostgreSQL unlogged table, its
  // rows do not.
  auto db = Database::Open(FileOptions(unlogged_file));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto t = (*db)->catalog()->GetTable("t");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t.value()->unlogged());
  EXPECT_EQ(t.value()->schema(), TwoIntSchema());
  EXPECT_EQ(t.value()->num_rows(), 0u);
  // And it is writable again from empty.
  ASSERT_TRUE(
      t.value()->Insert(Tuple({Value::Int32(1), Value::Int32(2)})).ok());
  EXPECT_EQ(t.value()->num_rows(), 1u);
}

TEST(UnloggedTest, LoggedNeighborsAreUnaffected) {
  TempDbFile file("unlogged_neighbor.db");
  {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto keep = (*db)->catalog()->CreateTable("keep", TwoIntSchema(),
                                              TableBacking::kHeap);
    ASSERT_TRUE(keep.ok());
    auto scratch = (*db)->catalog()->CreateTable(
        "scratch", TwoIntSchema(), TableBacking::kHeap, /*unlogged=*/true);
    ASSERT_TRUE(scratch.ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(
          keep.value()
              ->Insert(Tuple({Value::Int32(i), Value::Int32(i * 2)}))
              .ok());
      ASSERT_TRUE(scratch.value()
                      ->Insert(Tuple({Value::Int32(-i), Value::Int32(i)}))
                      .ok());
    }
  }
  auto db = Database::Open(FileOptions(file));
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto keep = (*db)->catalog()->GetTable("keep");
  ASSERT_TRUE(keep.ok());
  EXPECT_FALSE(keep.value()->unlogged());
  ASSERT_EQ(keep.value()->num_rows(), 500u);
  auto it = keep.value()->Scan();
  Tuple row;
  int expect = 0;
  while (true) {
    auto more = it->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    EXPECT_EQ(row.value(0).AsInt32(), expect);
    EXPECT_EQ(row.value(1).AsInt32(), expect * 2);
    ++expect;
  }
  EXPECT_EQ(expect, 500);
  auto scratch = (*db)->catalog()->GetTable("scratch");
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(scratch.value()->num_rows(), 0u);
}

TEST(UnloggedTest, AbandonedChainsAreReclaimedAcrossGenerations) {
  TempDbFile file("unlogged_reclaim.db");
  uint64_t pages_after_first_cycle = 0;
  // Each generation fills an unlogged table and exits; reopen discards the
  // rows and reclaims the abandoned chain, so the file must not grow by a
  // chain per generation.
  for (int generation = 0; generation < 4; ++generation) {
    auto db = Database::Open(FileOptions(file));
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    Table* t = nullptr;
    if (generation == 0) {
      auto created = (*db)->catalog()->CreateTable(
          "scratch", TwoIntSchema(), TableBacking::kHeap, /*unlogged=*/true);
      ASSERT_TRUE(created.ok());
      t = created.value();
    } else {
      auto found = (*db)->catalog()->GetTable("scratch");
      ASSERT_TRUE(found.ok());
      t = found.value();
      EXPECT_EQ(t->num_rows(), 0u);
    }
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(t->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
    }
    // The reclaimed pages become allocatable after the next checkpoint, so
    // generation N reuses what generation N-1 abandoned.
    ASSERT_TRUE((*db)->Checkpoint().ok());
    if (generation == 1) {
      pages_after_first_cycle = (*db)->pool()->backend()->NumPages();
    }
    if (generation >= 2) {
      EXPECT_LE((*db)->pool()->backend()->NumPages(),
                pages_after_first_cycle + 2)
          << "generation " << generation
          << " grew the file instead of reusing reclaimed unlogged pages";
    }
  }
}

TEST(UnloggedTest, V2SnapshotWithoutTheFlagStillDecodes) {
  // A hand-written version-2 snapshot: one heap table, no trailing
  // unlogged byte. The previous engine wrote exactly this layout.
  RecordWriter w;
  w.PutU32(2);  // snapshot version before the unlogged flag existed
  w.PutU32(1);  // one table
  w.PutString("t");
  w.PutU8(1);  // TableBacking::kHeap
  w.PutU16(1);
  w.PutString("a");
  w.PutU8(0);  // ValueType::kInt32
  w.PutU32(7);    // first_page
  w.PutU32(9);    // last_page
  w.PutU64(3);    // num_pages
  w.PutU64(42);   // row_count
  w.PutU64(512);  // size_bytes
  w.PutU32(0);    // no free pages
  auto decoded = DecodeCatalogSnapshot(w.bytes());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().tables.size(), 1u);
  EXPECT_FALSE(decoded.value().tables[0].unlogged);
  EXPECT_EQ(decoded.value().tables[0].row_count, 42u);
}

TEST(UnloggedTest, SnapshotRoundTripsTheFlagAndRejectsBadTags) {
  CatalogSnapshot snapshot;
  PersistedTableMeta logged;
  logged.name = "keep";
  logged.backing = TableBacking::kHeap;
  logged.schema = TwoIntSchema();
  PersistedTableMeta scratch = logged;
  scratch.name = "scratch";
  scratch.unlogged = true;
  snapshot.tables = {logged, scratch};

  std::string bytes = EncodeCatalogSnapshot(snapshot);
  auto decoded = DecodeCatalogSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().tables.size(), 2u);
  EXPECT_FALSE(decoded.value().tables[0].unlogged);
  EXPECT_TRUE(decoded.value().tables[1].unlogged);

  // The flag is the last byte of each table record; corrupt the final one.
  bytes[bytes.size() - 5] = 2;  // before the u32 free-page count
  auto bad = DecodeCatalogSnapshot(bytes);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("unknown unlogged tag"),
            std::string::npos)
      << bad.status().ToString();
}

}  // namespace
}  // namespace setm

// Unit tests for src/relational: Value, Schema, Tuple serialization,
// tables, catalog and the Database facade.

#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/database.h"
#include "relational/table.h"

namespace setm {
namespace {

Schema TwoIntSchema() {
  return Schema({Column{"a", ValueType::kInt32}, Column{"b", ValueType::kInt32}});
}

// --------------------------------------------------------------------------
// Value
// --------------------------------------------------------------------------

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int32(-5).AsInt32(), -5);
  EXPECT_EQ(Value::Int64(1LL << 40).AsInt64(), 1LL << 40);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, CrossWidthIntegerEquality) {
  EXPECT_EQ(Value::Int32(7), Value::Int64(7));
  EXPECT_EQ(Value::Int32(7).Hash(), Value::Int64(7).Hash());
  EXPECT_NE(Value::Int32(7), Value::Int64(8));
}

TEST(ValueTest, NumericDoubleComparison) {
  EXPECT_EQ(Value::Int32(2), Value::Double(2.0));
  EXPECT_LT(Value::Double(1.5).Compare(Value::Int32(2)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int32(2)), 0);
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // Would be equal under double rounding.
  const int64_t a = (1LL << 60) + 1;
  const int64_t b = 1LL << 60;
  EXPECT_GT(Value::Int64(a).Compare(Value::Int64(b)), 0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x"), Value::String("x"));
  // Numerics order before strings, never equal.
  EXPECT_LT(Value::Int32(999).Compare(Value::String("0")), 0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int32(42).ToString(), "42");
  EXPECT_EQ(Value::String("ab").ToString(), "'ab'");
}

// --------------------------------------------------------------------------
// Schema
// --------------------------------------------------------------------------

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s({Column{"trans_id", ValueType::kInt32},
            Column{"Item", ValueType::kInt32}});
  EXPECT_EQ(s.FindColumn("TRANS_ID"), std::optional<size_t>(0));
  EXPECT_EQ(s.FindColumn("item"), std::optional<size_t>(1));
  EXPECT_FALSE(s.FindColumn("missing").has_value());
}

TEST(SchemaTest, FixedTupleSizeMatchesPaperArithmetic) {
  // R_2 tuples: (trans_id, item1, item2) = 3 x 4 bytes.
  Schema r2({Column{"trans_id", ValueType::kInt32},
             Column{"item1", ValueType::kInt32},
             Column{"item2", ValueType::kInt32}});
  EXPECT_EQ(r2.FixedTupleSize(), std::optional<size_t>(12));
  Schema with_string({Column{"s", ValueType::kString}});
  EXPECT_FALSE(with_string.FixedTupleSize().has_value());
}

TEST(SchemaTest, IdentFoldLowercases) {
  EXPECT_EQ(IdentFold("SaLeS"), "sales");
  EXPECT_TRUE(IdentEquals("Sales", "SALES"));
  EXPECT_FALSE(IdentEquals("sales", "sale"));
}

// --------------------------------------------------------------------------
// Tuple serialization
// --------------------------------------------------------------------------

TEST(TupleTest, SerializeRoundTripAllTypes) {
  Schema schema({Column{"i", ValueType::kInt32},
                 Column{"l", ValueType::kInt64},
                 Column{"d", ValueType::kDouble},
                 Column{"s", ValueType::kString}});
  Tuple in({Value::Int32(-7), Value::Int64(1LL << 50), Value::Double(0.25),
            Value::String("hello")});
  std::string bytes;
  in.SerializeTo(schema, &bytes);
  EXPECT_EQ(bytes.size(), in.SerializedSize(schema));
  auto out = Tuple::Deserialize(schema, bytes);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), in);
}

TEST(TupleTest, DeserializeTruncatedFails) {
  Schema schema = TwoIntSchema();
  Tuple in({Value::Int32(1), Value::Int32(2)});
  std::string bytes;
  in.SerializeTo(schema, &bytes);
  auto out = Tuple::Deserialize(schema, std::string_view(bytes).substr(0, 5));
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsCorruption());
}

TEST(TupleTest, DeserializeTrailingBytesFails) {
  Schema schema = TwoIntSchema();
  Tuple in({Value::Int32(1), Value::Int32(2)});
  std::string bytes;
  in.SerializeTo(schema, &bytes);
  bytes += "junk";
  EXPECT_TRUE(Tuple::Deserialize(schema, bytes).status().IsCorruption());
}

TEST(TupleTest, ComparatorOrdersByKeys) {
  TupleComparator cmp({1, 0});
  Tuple a({Value::Int32(1), Value::Int32(5)});
  Tuple b({Value::Int32(2), Value::Int32(5)});
  Tuple c({Value::Int32(0), Value::Int32(6)});
  EXPECT_LT(cmp.Compare(a, b), 0);  // equal col1, col0 decides
  EXPECT_LT(cmp.Compare(b, c), 0);  // col1 decides
  EXPECT_EQ(cmp.Compare(a, a), 0);
  EXPECT_TRUE(cmp(a, c));
}

// --------------------------------------------------------------------------
// Tables
// --------------------------------------------------------------------------

TEST(MemTableTest, InsertScanAndSizes) {
  MemTable t("t", TwoIntSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Insert(Tuple({Value::Int32(i), Value::Int32(i * 2)})).ok());
  }
  EXPECT_EQ(t.num_rows(), 100u);
  EXPECT_EQ(t.size_bytes(), 800u);  // 100 rows x 8 bytes
  EXPECT_EQ(t.num_pages(), 1u);
  auto it = t.Scan();
  Tuple row;
  int n = 0;
  while (true) {
    auto more = it->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    EXPECT_EQ(row.value(1).AsInt32(), row.value(0).AsInt32() * 2);
    ++n;
  }
  EXPECT_EQ(n, 100);
}

TEST(MemTableTest, ArityMismatchRejected) {
  MemTable t("t", TwoIntSchema());
  EXPECT_TRUE(t.Insert(Tuple({Value::Int32(1)})).IsInvalidArgument());
}

TEST(MemTableTest, TruncateClears) {
  MemTable t("t", TwoIntSchema());
  ASSERT_TRUE(t.Insert(Tuple({Value::Int32(1), Value::Int32(2)})).ok());
  ASSERT_TRUE(t.Truncate().ok());
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.size_bytes(), 0u);
}

TEST(HeapTableTest, InsertScanRoundTrip) {
  IoStats stats;
  MemoryBackend backend(&stats);
  BufferPool pool(&backend, 16);
  auto t = HeapTable::Create("h", TwoIntSchema(), &pool);
  ASSERT_TRUE(t.ok());
  const int n = 2000;  // spans several pages (8-byte records)
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        (*t)->Insert(Tuple({Value::Int32(i), Value::Int32(-i)})).ok());
  }
  EXPECT_EQ((*t)->num_rows(), static_cast<uint64_t>(n));
  EXPECT_GT((*t)->num_pages(), 1u);
  auto it = (*t)->Scan();
  Tuple row;
  int i = 0;
  while (true) {
    auto more = it->Next(&row);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    EXPECT_EQ(row.value(0).AsInt32(), i);
    EXPECT_EQ(row.value(1).AsInt32(), -i);
    ++i;
  }
  EXPECT_EQ(i, n);
}

TEST(HeapTableTest, PagesMatchSerializedVolume) {
  IoStats stats;
  MemoryBackend backend(&stats);
  BufferPool pool(&backend, 16);
  auto t = HeapTable::Create("h", TwoIntSchema(), &pool);
  ASSERT_TRUE(t.ok());
  // 8-byte records + 4-byte slots: ~340 records per 4 KiB page.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE((*t)->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
  }
  EXPECT_EQ((*t)->size_bytes(), 8000u);
  EXPECT_GE((*t)->num_pages(), 3u);
  EXPECT_LE((*t)->num_pages(), 4u);
}

// --------------------------------------------------------------------------
// Catalog & Database
// --------------------------------------------------------------------------

TEST(CatalogTest, CreateGetDrop) {
  Database db;
  Catalog* catalog = db.catalog();
  ASSERT_TRUE(
      catalog->CreateTable("t1", TwoIntSchema(), TableBacking::kMemory).ok());
  ASSERT_TRUE(
      catalog->CreateTable("t2", TwoIntSchema(), TableBacking::kHeap).ok());
  EXPECT_TRUE(catalog->HasTable("T1"));  // case-insensitive
  auto t = catalog->GetTable("t1");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t.value()->name(), "t1");
  EXPECT_EQ(catalog->TableNames(),
            (std::vector<std::string>{"t1", "t2"}));
  ASSERT_TRUE(catalog->DropTable("t1").ok());
  EXPECT_FALSE(catalog->HasTable("t1"));
  EXPECT_TRUE(catalog->GetTable("t1").status().IsNotFound());
}

TEST(CatalogTest, DuplicateNameRejected) {
  Database db;
  ASSERT_TRUE(db.catalog()
                  ->CreateTable("t", TwoIntSchema(), TableBacking::kMemory)
                  .ok());
  auto dup =
      db.catalog()->CreateTable("T", TwoIntSchema(), TableBacking::kMemory);
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, HeapTableIoShowsUpInLedger) {
  Database db;
  auto t = db.catalog()->CreateTable("t", TwoIntSchema(), TableBacking::kHeap);
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(
        t.value()->Insert(Tuple({Value::Int32(i), Value::Int32(i)})).ok());
  }
  EXPECT_GT(db.io_stats()->pages_allocated, 5u);
}

TEST(DatabaseTest, FileBackedDatabase) {
  DatabaseOptions options;
  options.file_path = testing::TempDir() + "/setm_db_test.db";
  auto db = Database::Open(options);
  ASSERT_TRUE(db.ok());
  auto t = (*db)->catalog()->CreateTable("t", TwoIntSchema(),
                                         TableBacking::kHeap);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t.value()->Insert(Tuple({Value::Int32(1), Value::Int32(2)})).ok());
  EXPECT_EQ(t.value()->num_rows(), 1u);
  std::remove(options.file_path.c_str());
}

TEST(DatabaseTest, OpenBadPathFails) {
  DatabaseOptions options;
  options.file_path = "/nonexistent-dir-xyz/db.bin";
  EXPECT_FALSE(Database::Open(options).ok());
}

}  // namespace
}  // namespace setm

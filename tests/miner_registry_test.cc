// MinerRegistry unit tests plus the observer/cancellation contract of the
// unified Miner interface: lookup failures, stable enumeration, duplicate
// registration, request validation, per-iteration callbacks, and the
// guarantee that a cancelled run stops within one iteration, returns
// Cancelled and leaks no catalog temp relations.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/miner_registry.h"
#include "core/paper_example.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"

namespace setm {
namespace {

const char* kBuiltins[] = {"setm",        "setm-parallel",    "setm-sharded",
                           "setm-sql",    "nested-loop",      "apriori",
                           "apriori-parallel", "ais",         "brute-force"};

TransactionDb TestTransactions() {
  QuestOptions gen;
  gen.seed = 77;
  gen.num_transactions = 120;
  gen.avg_transaction_size = 5;
  gen.num_items = 14;
  gen.num_patterns = 10;
  return QuestGenerator(gen).Generate();
}

MiningOptions TestOptions() {
  MiningOptions options;
  options.min_support = 0.05;
  return options;
}

/// Observer that records every callback and cancels after `cancel_after`
/// iterations (0 = never cancel).
class RecordingObserver : public MiningObserver {
 public:
  explicit RecordingObserver(size_t cancel_after = 0)
      : cancel_after_(cancel_after) {}

  bool OnIteration(const IterationStats& stats) override {
    ks_.push_back(stats.k);
    return cancel_after_ == 0 || ks_.size() < cancel_after_;
  }

  const std::vector<size_t>& ks() const { return ks_; }

 private:
  size_t cancel_after_;
  std::vector<size_t> ks_;
};

TEST(MinerRegistryTest, UnknownAlgorithmIsNotFound) {
  Database db;
  auto miner = MinerRegistry::Create("definitely-not-an-algo", &db);
  ASSERT_FALSE(miner.ok());
  EXPECT_EQ(miner.status().code(), StatusCode::kNotFound);
  // The error names the registered algorithms, so --algo typos are
  // self-explaining.
  EXPECT_NE(miner.status().message().find("setm"), std::string::npos);
  EXPECT_FALSE(MinerRegistry::Info("definitely-not-an-algo").ok());
}

TEST(MinerRegistryTest, EnumerationIsStableAndStartsWithBuiltins) {
  std::vector<MinerInfo> first = MinerRegistry::List();
  ASSERT_GE(first.size(), 9u);
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(first[i].name, kBuiltins[i]) << "position " << i;
    EXPECT_FALSE(first[i].description.empty());
  }
  // Enumeration order is registration order and does not wobble.
  std::vector<MinerInfo> second = MinerRegistry::List();
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].name, first[i].name);
  }
}

TEST(MinerRegistryTest, DoubleRegistrationIsRejected) {
  // A built-in name is taken.
  auto taken = MinerRegistry::Register(
      MinerInfo{"setm", "imposter", false, false, false},
      [](Database*, const SetmOptions&) { return std::unique_ptr<Miner>(); });
  ASSERT_FALSE(taken.ok());
  EXPECT_EQ(taken.code(), StatusCode::kAlreadyExists);

  // A custom registration works once, then collides with itself.
  MinerRegistry::Factory factory = [](Database* db, const SetmOptions& knobs) {
    auto inner = MinerRegistry::Create("brute-force", db, knobs);
    return inner.ok() ? std::move(inner).value() : nullptr;
  };
  ASSERT_TRUE(MinerRegistry::Register(
                  MinerInfo{"test-custom-algo", "registered by the registry "
                            "unit test", false, false, false},
                  factory)
                  .ok());
  auto dup = MinerRegistry::Register(
      MinerInfo{"test-custom-algo", "again", false, false, false}, factory);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);

  // The custom algorithm is a first-class citizen: enumerated and runnable.
  bool listed = false;
  for (const MinerInfo& info : MinerRegistry::List()) {
    listed |= info.name == "test-custom-algo";
  }
  EXPECT_TRUE(listed);
  Database db;
  TransactionDb txns = PaperExampleTransactions();
  auto miner = MinerRegistry::Create("test-custom-algo", &db);
  ASSERT_TRUE(miner.ok());
  MiningRequest request;
  request.transactions = &txns;
  request.options = PaperExampleOptions();
  auto result = miner.value()->Mine(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.OfSize(2).size(), 6u);
}

TEST(MinerRegistryTest, CreateRequiresDatabase) {
  auto miner = MinerRegistry::Create("apriori", nullptr);
  ASSERT_FALSE(miner.ok());
  EXPECT_EQ(miner.status().code(), StatusCode::kInvalidArgument);
}

TEST(MinerRegistryTest, RequestMustNameExactlyOneSource) {
  Database db;
  auto miner = MinerRegistry::Create("setm", &db);
  ASSERT_TRUE(miner.ok());

  MiningRequest empty;
  auto none = miner.value()->Mine(empty);
  ASSERT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kInvalidArgument);

  TransactionDb txns = PaperExampleTransactions();
  auto sales = LoadSalesTable(&db, "sales", txns, TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  MiningRequest both;
  both.transactions = &txns;
  both.table = sales.value();
  auto two = miner.value()->Mine(both);
  ASSERT_FALSE(two.ok());
  EXPECT_EQ(two.status().code(), StatusCode::kInvalidArgument);
}

TEST(MinerRegistryTest, DuplicateTableRowsAreRejectedNotMerged) {
  // Row-oriented miners (setm) count duplicate SALES rows; the extraction
  // path must reject them rather than silently dedup and diverge.
  Database db;
  auto table = db.catalog()->CreateTable("sales", SetmMiner::SalesSchema(),
                                         TableBacking::kMemory);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(table.value()
                    ->Insert(Tuple({Value::Int32(1), Value::Int32(5)}))
                    .ok());
  }
  auto miner = MinerRegistry::Create("apriori", &db);
  ASSERT_TRUE(miner.ok());
  MiningRequest request;
  request.table = table.value();
  request.options = TestOptions();
  auto result = miner.value()->Mine(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("(1, 5)"), std::string::npos)
      << result.status().ToString();
}

TEST(MinerRegistryTest, SerialMinersRejectThreadRequests) {
  Database db;
  TransactionDb txns = PaperExampleTransactions();
  for (const MinerInfo& info : MinerRegistry::List()) {
    if (info.honors_threads) continue;
    SetmOptions knobs;
    knobs.num_threads = 4;
    auto miner = MinerRegistry::Create(info.name, &db, knobs);
    ASSERT_TRUE(miner.ok()) << info.name;
    MiningRequest request;
    request.transactions = &txns;
    request.options = PaperExampleOptions();
    auto result = miner.value()->Mine(request);
    ASSERT_FALSE(result.ok()) << info.name;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << info.name;
  }
}

TEST(MinerRegistryTest, PhysicalKnobsInRequestOverrideCreateKnobs) {
  Database db;
  TransactionDb txns = PaperExampleTransactions();
  SetmOptions create_knobs;
  create_knobs.num_threads = 8;  // would be rejected by apriori...
  auto miner = MinerRegistry::Create("apriori", &db, create_knobs);
  ASSERT_TRUE(miner.ok());
  MiningRequest request;
  request.transactions = &txns;
  request.options = PaperExampleOptions();
  request.physical = SetmOptions{};  // ...but the request overrides to serial
  auto result = miner.value()->Mine(request);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().itemsets.OfSize(2).size(), 6u);
}

// Observer callbacks arrive once per iteration, in k order, for every
// registered algorithm.
TEST(MiningObserverTest, ObserverSeesEveryIteration) {
  TransactionDb txns = TestTransactions();
  for (const MinerInfo& info : MinerRegistry::List()) {
    Database db;
    auto miner = MinerRegistry::Create(info.name, &db);
    ASSERT_TRUE(miner.ok()) << info.name;
    RecordingObserver observer;
    MiningRequest request;
    request.transactions = &txns;
    request.options = TestOptions();
    request.options.observer = &observer;
    auto result = miner.value()->Mine(request);
    ASSERT_TRUE(result.ok()) << info.name << ": "
                             << result.status().ToString();
    ASSERT_EQ(observer.ks().size(), result.value().iterations.size())
        << info.name;
    for (size_t i = 0; i < observer.ks().size(); ++i) {
      EXPECT_EQ(observer.ks()[i], result.value().iterations[i].k)
          << info.name;
    }
  }
}

// A cancelled run stops within one iteration of the veto, returns
// Cancelled, and leaks no catalog temp relations — for every algorithm,
// over both request sources.
TEST(MiningObserverTest, CancellationStopsEveryMinerWithoutCatalogLeaks) {
  TransactionDb txns = TestTransactions();
  for (const MinerInfo& info : MinerRegistry::List()) {
    for (const bool table_source : {false, true}) {
      Database db;
      const Table* table = nullptr;
      if (table_source) {
        auto sales = LoadSalesTable(&db, "sales", txns, TableBacking::kHeap);
        ASSERT_TRUE(sales.ok());
        table = sales.value();
      }
      const size_t tables_before = db.catalog()->TableNames().size();

      auto miner = MinerRegistry::Create(info.name, &db);
      ASSERT_TRUE(miner.ok()) << info.name;
      RecordingObserver observer(/*cancel_after=*/1);
      MiningRequest request;
      if (table_source) {
        request.table = table;
      } else {
        request.transactions = &txns;
      }
      request.options = TestOptions();
      request.options.observer = &observer;
      auto result = miner.value()->Mine(request);

      const char* mode = table_source ? " (table source)" : " (txn source)";
      ASSERT_FALSE(result.ok()) << info.name << mode;
      EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
          << info.name << mode << ": " << result.status().ToString();
      // Stopped within one iteration: exactly the vetoing callback ran.
      EXPECT_EQ(observer.ks().size(), 1u) << info.name << mode;
      // No catalog temp relations leaked (setm-sql scratch, temporary
      // source tables, ...).
      EXPECT_EQ(db.catalog()->TableNames().size(), tables_before)
          << info.name << mode;
    }
  }
}

// Cancellation also reaches the partitioned executor's coordinator loop.
TEST(MiningObserverTest, ParallelExecutorHonorsCancellation) {
  TransactionDb txns = TestTransactions();
  Database db;
  SetmOptions knobs;
  knobs.num_threads = 4;
  auto miner = MinerRegistry::Create("setm-parallel", &db, knobs);
  ASSERT_TRUE(miner.ok());
  RecordingObserver observer(/*cancel_after=*/2);
  MiningRequest request;
  request.transactions = &txns;
  request.options = TestOptions();
  request.options.observer = &observer;
  auto result = miner.value()->Mine(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(observer.ks().size(), 2u);
}

}  // namespace
}  // namespace setm

# End-to-end test for tools/setm_mine, driven by ctest:
#   1. write the paper's Section 4.2 example database as a tiny CSV,
#   2. mine it through the CLI in --format csv,
#   3. compare the rule output byte-for-byte against the committed golden.
#
# Invoked as:
#   cmake -DSETM_MINE=<binary> -DGOLDEN_DIR=<dir> -DWORK_DIR=<dir> -P this_file

foreach(var SETM_MINE GOLDEN_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "${var} must be defined")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")

# The worked example of the paper (A=0 .. H=7), one (trans_id,item) row per
# tuple of the SALES relation.
set(rows "trans_id,item\n")
foreach(row
    "10,0" "10,1" "10,2"
    "20,0" "20,1" "20,3"
    "30,0" "30,1" "30,2"
    "40,1" "40,2" "40,3"
    "50,0" "50,2" "50,6"
    "60,0" "60,3" "60,6"
    "70,0" "70,4" "70,7"
    "80,3" "80,4" "80,5"
    "90,3" "90,4" "90,5"
    "99,3" "99,4" "99,5")
  string(APPEND rows "${row}\n")
endforeach()
file(WRITE "${WORK_DIR}/paper_example.csv" "${rows}")

execute_process(
  COMMAND "${SETM_MINE}"
          --input "${WORK_DIR}/paper_example.csv"
          --minsup 30 --minconf 70 --format csv
  OUTPUT_FILE "${WORK_DIR}/rules.csv"
  RESULT_VARIABLE exit_code)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "setm_mine exited with ${exit_code}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/rules.csv" "${GOLDEN_DIR}/paper_example_rules.csv"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  file(READ "${WORK_DIR}/rules.csv" actual)
  message(FATAL_ERROR "rule output differs from golden "
                      "${GOLDEN_DIR}/paper_example_rules.csv; got:\n${actual}")
endif()

// Tests for the Section 3.1 SQL formulation: the k-way self-join queries,
// executed literally, must produce the same count relations as every other
// miner.

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/nested_loop_sql.h"
#include "core/paper_example.h"
#include "core/rules.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"

namespace setm {
namespace {

TEST(NestedLoopSqlTest, PaperExample) {
  Database db;
  auto sales = LoadSalesTable(&db, "sales", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  NestedLoopSqlMiner miner(&db, "sales");
  auto result = miner.MineTable(PaperExampleOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().itemsets.OfSize(1).size(), 6u);
  EXPECT_EQ(result.value().itemsets.OfSize(2).size(), 6u);
  EXPECT_EQ(result.value().itemsets.OfSize(3).size(), 1u);
  EXPECT_EQ(result.value().itemsets.CountOf({3, 4, 5}), 3);
}

TEST(NestedLoopSqlTest, GeneratedSqlMatchesSection31Shape) {
  Database db;
  auto sales = LoadSalesTable(&db, "sales", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  NestedLoopSqlMiner miner(&db, "sales");
  ASSERT_TRUE(miner.MineTable(PaperExampleOptions()).ok());
  bool found_c2 = false;
  for (const std::string& s : miner.executed_statements()) {
    if (s.find("FROM nl_c1 c, sales r1, sales r2") != std::string::npos) {
      // The Section 3.1 conditions, verbatim modulo identifiers.
      EXPECT_NE(s.find("r1.trans_id = r2.trans_id"), std::string::npos);
      EXPECT_NE(s.find("r1.item = c.item1"), std::string::npos);
      EXPECT_NE(s.find("r2.item > r1.item"), std::string::npos);
      EXPECT_NE(s.find("HAVING COUNT(*) >= :minsupport"), std::string::npos);
      found_c2 = true;
    }
  }
  EXPECT_TRUE(found_c2);
}

class NestedLoopSqlSweepTest : public testing::TestWithParam<uint64_t> {};

TEST_P(NestedLoopSqlSweepTest, MatchesOracle) {
  QuestOptions gen;
  gen.seed = GetParam();
  gen.num_transactions = 80;  // the k-way join is O(|SALES|^k): keep small
  gen.avg_transaction_size = 4;
  gen.num_items = 12;
  TransactionDb txns = QuestGenerator(gen).Generate();
  MiningOptions options;
  options.min_support = 0.08;

  BruteForceMiner oracle;
  auto expected = oracle.Mine(txns, options);
  ASSERT_TRUE(expected.ok());

  Database db;
  auto sales = LoadSalesTable(&db, "sales", txns, TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  NestedLoopSqlMiner miner(&db, "sales");
  auto result = miner.MineTable(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets)
      << "SQL NL found " << result.value().itemsets.TotalPatterns()
      << " vs oracle " << expected.value().itemsets.TotalPatterns();
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestedLoopSqlSweepTest,
                         testing::Values(61, 62, 63));

TEST(NestedLoopSqlTest, RespectsMaxPatternLength) {
  Database db;
  auto sales = LoadSalesTable(&db, "sales", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  NestedLoopSqlMiner miner(&db, "sales");
  MiningOptions options = PaperExampleOptions();
  options.max_pattern_length = 2;
  auto result = miner.MineTable(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.MaxSize(), 2u);
}

TEST(NestedLoopSqlTest, MissingTableFails) {
  Database db;
  NestedLoopSqlMiner miner(&db, "ghost");
  EXPECT_FALSE(miner.MineTable(MiningOptions{}).ok());
}

// Lift metric sanity (computed during rule generation).
TEST(RuleLiftTest, LiftMatchesDefinition) {
  BruteForceMiner miner;
  auto result =
      miner.Mine(PaperExampleTransactions(), PaperExampleOptions());
  ASSERT_TRUE(result.ok());
  MiningOptions options = PaperExampleOptions();
  auto rules = GenerateRules(result.value().itemsets, options).value();
  ASSERT_FALSE(rules.empty());
  const double n =
      static_cast<double>(result.value().itemsets.num_transactions);
  for (const auto& r : rules) {
    const int64_t consequent_count =
        result.value().itemsets.CountOf(r.consequent);
    ASSERT_GT(consequent_count, 0);
    const double expected =
        r.confidence / (static_cast<double>(consequent_count) / n);
    EXPECT_NEAR(r.lift, expected, 1e-12);
    EXPECT_GT(r.lift, 0.0);
  }
  // F ==> D has confidence 1.0 and |D| = 6/10: lift = 1 / 0.6.
  for (const auto& r : rules) {
    if (r.antecedent == std::vector<ItemId>{5} &&
        r.consequent == std::vector<ItemId>{3}) {
      EXPECT_NEAR(r.lift, 1.0 / 0.6, 1e-12);
    }
  }
}

}  // namespace
}  // namespace setm

// The plan/execute layer: MiningPlanner strategy selection across the
// decision matrix (cold, dominated, stale-within-budget, stale-over-budget,
// malformed batches), bit-identity of the answer regardless of the chosen
// strategy, the PlanStats ledger, and the zero-iteration guarantee of
// cache-filter plans — all over both TableBackings.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/mining_planner.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"
#include "incremental/itemset_store.h"

namespace setm {
namespace {

TransactionDb MakeQuestDb(uint64_t seed, uint32_t num_transactions,
                          uint32_t num_items = 20) {
  QuestOptions gen;
  gen.seed = seed;
  gen.num_transactions = num_transactions;
  gen.avg_transaction_size = 5;
  gen.num_items = num_items;
  gen.num_patterns = 15;
  return QuestGenerator(gen).Generate();
}

/// A fresh batch whose transaction ids continue after `start_after`.
TransactionDb MakeBatch(uint64_t seed, uint32_t count,
                        TransactionId start_after) {
  TransactionDb batch = MakeQuestDb(seed, count);
  for (Transaction& t : batch) t.id += start_after;
  return batch;
}

/// Counts observer callbacks; the cache-filter zero-iteration proof.
class CountingObserver : public MiningObserver {
 public:
  bool OnIteration(const IterationStats&) override {
    ++iterations;
    return true;
  }
  int iterations = 0;
};

/// The oracle: a plain full mine of `txns` at `options`, independent of any
/// planner or store state.
FrequentItemsets Oracle(const TransactionDb& txns,
                        const MiningOptions& options) {
  Database db;
  auto mined = SetmMiner(&db).Mine(txns, options);
  EXPECT_TRUE(mined.ok()) << mined.status().ToString();
  return std::move(mined).value().itemsets;
}

class PlannerTest : public testing::TestWithParam<TableBacking> {
 protected:
  PlannerOptions Options() const {
    PlannerOptions options;
    options.store_prefix = "fi";
    options.store_backing = GetParam();
    options.setm.storage = GetParam();
    return options;
  }

  /// Materializes SALES and returns (planner-ready) request pieces.
  Table* MakeSales(Database* db, const TransactionDb& txns) {
    auto sales_or = LoadSalesTable(db, "sales", txns, GetParam());
    EXPECT_TRUE(sales_or.ok()) << sales_or.status().ToString();
    return sales_or.value();
  }
};

// --------------------------------------------------------------------------
// Strategy selection.
// --------------------------------------------------------------------------

TEST_P(PlannerTest, ColdQueryFullMinesAndWritesBack) {
  TransactionDb txns = MakeQuestDb(11, 150);
  Database db;
  Table* sales = MakeSales(&db, txns);
  MiningPlanner planner(&db, Options());

  PlanRequest request;
  request.table = sales;
  request.options.min_support_count = 4;
  auto exec = planner.Execute(request);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec.value().plan.strategy, PlanStrategy::kFullMine);
  EXPECT_TRUE(exec.value().plan.save_after_mine);
  EXPECT_TRUE(planner.cache()->Probe().ok());
  EXPECT_EQ(planner.stats().plans, 1u);
  EXPECT_EQ(planner.stats().full_mines, 1u);
  EXPECT_EQ(planner.stats().write_backs, 1u);
  EXPECT_TRUE(exec.value().result.itemsets == Oracle(txns, request.options));
}

TEST_P(PlannerTest, DominatedQueryIsServedByCacheFilterWithZeroIterations) {
  TransactionDb txns = MakeQuestDb(12, 150);
  Database db;
  Table* sales = MakeSales(&db, txns);
  MiningPlanner planner(&db, Options());

  PlanRequest request;
  request.table = sales;
  request.options.min_support_count = 3;
  ASSERT_TRUE(planner.Execute(request).ok());

  CountingObserver observer;
  request.options.min_support_count = 6;
  request.options.observer = &observer;
  auto exec = planner.Execute(request);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec.value().plan.strategy, PlanStrategy::kCacheFilter);
  // The zero-mining guarantee, observed from the outside: no iterations ran
  // and none were reported.
  EXPECT_TRUE(exec.value().result.iterations.empty());
  EXPECT_EQ(observer.iterations, 0);
  EXPECT_EQ(planner.stats().cache_filters, 1u);

  request.options.observer = nullptr;
  EXPECT_TRUE(exec.value().result.itemsets == Oracle(txns, request.options));
}

TEST_P(PlannerTest, LowerSupportQueryInvalidatesAndRemines) {
  TransactionDb txns = MakeQuestDb(13, 150);
  Database db;
  Table* sales = MakeSales(&db, txns);
  MiningPlanner planner(&db, Options());

  PlanRequest request;
  request.table = sales;
  request.options.min_support_count = 6;
  ASSERT_TRUE(planner.Execute(request).ok());

  // Support 3 < stored 6: the store cannot answer (anti-monotonicity only
  // helps upward), so the run is dropped and remined at the new threshold.
  request.options.min_support_count = 3;
  auto exec = planner.Execute(request);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec.value().plan.strategy, PlanStrategy::kFullMine);
  EXPECT_EQ(planner.stats().invalidations, 1u);
  EXPECT_EQ(planner.stats().full_mines, 2u);
  EXPECT_TRUE(exec.value().result.itemsets == Oracle(txns, request.options));

  // The write-back re-keyed the store at support 3: the old query is now a
  // cache hit again.
  request.options.min_support_count = 6;
  auto again = planner.Execute(request);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().plan.strategy, PlanStrategy::kCacheFilter);
}

TEST_P(PlannerTest, SmallAppendIsDeltaDerivedExactly) {
  TransactionDb base = MakeQuestDb(14, 200);
  TransactionDb delta = MakeBatch(15, 20, MaxTransactionId(base));
  Database db;
  Table* sales = MakeSales(&db, base);
  MiningPlanner planner(&db, Options());

  PlanRequest request;
  request.table = sales;
  request.options.min_support_count = 5;
  ASSERT_TRUE(planner.Execute(request).ok());

  request.append = &delta;
  auto exec = planner.Execute(request);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec.value().plan.strategy, PlanStrategy::kDeltaDerive);
  EXPECT_EQ(exec.value().delta_transactions, delta.size());
  EXPECT_EQ(planner.stats().delta_derives, 1u);

  TransactionDb combined = base;
  combined.insert(combined.end(), delta.begin(), delta.end());
  EXPECT_TRUE(exec.value().result.itemsets ==
              Oracle(combined, request.options));

  // The derivation refreshed the store: a dominated re-query of the
  // combined database is a cache hit.
  request.append = nullptr;
  request.options.min_support_count = 8;
  auto requery = planner.Execute(request);
  ASSERT_TRUE(requery.ok());
  EXPECT_EQ(requery.value().plan.strategy, PlanStrategy::kCacheFilter);
  EXPECT_TRUE(requery.value().result.itemsets ==
              Oracle(combined, request.options));
}

TEST_P(PlannerTest, OversizedAppendFallsBackToFullMine) {
  TransactionDb base = MakeQuestDb(16, 100);
  TransactionDb delta = MakeBatch(17, 80, MaxTransactionId(base));
  Database db;
  Table* sales = MakeSales(&db, base);
  PlannerOptions options = Options();
  options.full_remine_fraction = 0.10;  // 80/180 is far above 10%
  MiningPlanner planner(&db, options);

  PlanRequest request;
  request.table = sales;
  request.options.min_support_count = 5;
  ASSERT_TRUE(planner.Execute(request).ok());

  request.append = &delta;
  auto exec = planner.Execute(request);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec.value().plan.strategy, PlanStrategy::kFullMine);
  EXPECT_EQ(planner.stats().delta_derives, 0u);

  TransactionDb combined = base;
  combined.insert(combined.end(), delta.begin(), delta.end());
  EXPECT_TRUE(exec.value().result.itemsets ==
              Oracle(combined, request.options));
}

TEST_P(PlannerTest, InMemorySourceNeverCaches) {
  TransactionDb txns = MakeQuestDb(18, 100);
  Database db;
  MiningPlanner planner(&db, Options());

  PlanRequest request;
  request.transactions = &txns;
  request.options.min_support_count = 4;
  auto exec = planner.Execute(request);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec.value().plan.strategy, PlanStrategy::kFullMine);
  EXPECT_FALSE(exec.value().plan.save_after_mine);
  // Nothing keyed on a relation, nothing stored.
  EXPECT_EQ(planner.cache()->Probe().status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(exec.value().result.itemsets == Oracle(txns, request.options));
}

// --------------------------------------------------------------------------
// Plan() is pure inspection.
// --------------------------------------------------------------------------

TEST_P(PlannerTest, PlanInspectsWithoutMiningOrMutating) {
  TransactionDb txns = MakeQuestDb(19, 100);
  Database db;
  Table* sales = MakeSales(&db, txns);
  MiningPlanner planner(&db, Options());

  PlanRequest request;
  request.table = sales;
  request.options.min_support_count = 4;
  auto plan = planner.Plan(request);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().strategy, PlanStrategy::kFullMine);
  EXPECT_FALSE(plan.value().reason.empty());
  EXPECT_FALSE(plan.value().Explain().empty());
  // Planned but not executed: no store was written, no strategy charged.
  EXPECT_EQ(planner.cache()->Probe().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(planner.stats().plans, 1u);
  EXPECT_EQ(planner.stats().full_mines, 0u);
  EXPECT_EQ(planner.stats().write_backs, 0u);

  ASSERT_TRUE(planner.Execute(request).ok());
  auto dominated = planner.Plan(request);
  ASSERT_TRUE(dominated.ok());
  EXPECT_EQ(dominated.value().strategy, PlanStrategy::kCacheFilter);
  EXPECT_TRUE(dominated.value().store_found);
  EXPECT_EQ(planner.stats().cache_filters, 0u);  // still only inspected
}

// --------------------------------------------------------------------------
// Malformed requests.
// --------------------------------------------------------------------------

TEST_P(PlannerTest, BatchAtOrBelowWatermarkIsRejected) {
  TransactionDb base = MakeQuestDb(20, 100);
  Database db;
  Table* sales = MakeSales(&db, base);
  MiningPlanner planner(&db, Options());

  PlanRequest request;
  request.table = sales;
  request.options.min_support_count = 4;
  ASSERT_TRUE(planner.Execute(request).ok());

  // Re-submitting already-applied ids must fail loudly, not double-count.
  request.append = &base;
  auto exec = planner.Execute(request);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(exec.status().message().find("at or below the stored watermark"),
            std::string::npos)
      << exec.status().ToString();
}

TEST_P(PlannerTest, DuplicateBatchIdsAreRejected) {
  TransactionDb base = MakeQuestDb(21, 100);
  TransactionDb delta = MakeBatch(22, 10, MaxTransactionId(base));
  delta.push_back(delta.front());
  Database db;
  Table* sales = MakeSales(&db, base);
  MiningPlanner planner(&db, Options());

  PlanRequest request;
  request.table = sales;
  request.options.min_support_count = 4;
  ASSERT_TRUE(planner.Execute(request).ok());

  request.append = &delta;
  auto exec = planner.Execute(request);
  ASSERT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(exec.status().message().find("duplicate delta transaction id"),
            std::string::npos)
      << exec.status().ToString();
}

TEST_P(PlannerTest, RequestsNeedExactlyOneSource) {
  TransactionDb txns = MakeQuestDb(23, 10);
  Database db;
  Table* sales = MakeSales(&db, txns);
  MiningPlanner planner(&db, Options());

  PlanRequest none;
  EXPECT_EQ(planner.Execute(none).status().code(),
            StatusCode::kInvalidArgument);

  PlanRequest both;
  both.table = sales;
  both.transactions = &txns;
  EXPECT_EQ(planner.Execute(both).status().code(),
            StatusCode::kInvalidArgument);

  PlanRequest mem_append;
  mem_append.transactions = &txns;
  mem_append.append = &txns;
  EXPECT_EQ(planner.Execute(mem_append).status().code(),
            StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(Backings, PlannerTest,
                         testing::Values(TableBacking::kMemory,
                                         TableBacking::kHeap));

// --------------------------------------------------------------------------
// Prefix-less planner: the pure dispatch path.
// --------------------------------------------------------------------------

TEST(PlannerNoStoreTest, EmptyPrefixDisablesCaching) {
  TransactionDb txns = MakeQuestDb(24, 100);
  Database db;
  PlannerOptions options;  // no store_prefix
  MiningPlanner planner(&db, options);

  PlanRequest request;
  request.transactions = &txns;
  request.options.min_support_count = 4;
  auto exec = planner.Execute(request);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec.value().plan.strategy, PlanStrategy::kFullMine);
  EXPECT_EQ(planner.cache(), nullptr);
  EXPECT_TRUE(exec.value().result.itemsets == Oracle(txns, request.options));
}

TEST(PlannerNoStoreTest, RegistryAlgorithmsRouteThroughTheSamePlanner) {
  TransactionDb txns = MakeQuestDb(25, 100);
  MiningOptions mining;
  mining.min_support_count = 4;
  FrequentItemsets reference = Oracle(txns, mining);

  for (const char* algo : {"apriori", "setm-sql"}) {
    Database db;
    PlannerOptions options;
    options.algorithm = algo;
    MiningPlanner planner(&db, options);
    PlanRequest request;
    request.transactions = &txns;
    request.options = mining;
    auto exec = planner.Execute(request);
    ASSERT_TRUE(exec.ok()) << algo << ": " << exec.status().ToString();
    EXPECT_TRUE(exec.value().result.itemsets == reference) << algo;
  }
}

}  // namespace
}  // namespace setm

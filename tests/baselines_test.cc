// Unit tests for the baseline miners' internals: the Apriori hash tree,
// candidate generation and AIS/brute-force behaviours not covered by the
// cross-miner equivalence suite.

#include <gtest/gtest.h>

#include <map>

#include "baselines/apriori.h"
#include "baselines/brute_force.h"
#include "baselines/hash_tree.h"
#include "common/random.h"
#include "datagen/quest_generator.h"

namespace setm {
namespace {

// --------------------------------------------------------------------------
// HashTree
// --------------------------------------------------------------------------

TEST(HashTreeTest, CountsContainedCandidates) {
  HashTree tree(2);
  tree.Insert({1, 2});
  tree.Insert({1, 3});
  tree.Insert({2, 3});
  tree.CountTransaction({1, 2, 3});  // contains all three
  tree.CountTransaction({1, 3});     // contains {1,3} only
  tree.CountTransaction({4, 5});     // contains none
  std::map<std::vector<ItemId>, int64_t> counts;
  tree.ForEach([&](const std::vector<ItemId>& items, int64_t count) {
    counts[items] = count;
  });
  EXPECT_EQ((counts[{1, 2}]), 1);  // only in the first transaction
  EXPECT_EQ((counts[{1, 3}]), 2);
  EXPECT_EQ((counts[{2, 3}]), 1);
}

TEST(HashTreeTest, NoDoubleCountingThroughMultiplePaths) {
  // With few buckets, multiple hash paths of one transaction can reach the
  // same leaf; the stamp must keep each candidate counted at most once.
  HashTree tree(2, /*max_leaf=*/1, /*buckets=*/2);
  for (ItemId a = 0; a < 6; ++a) {
    for (ItemId b = a + 1; b < 6; ++b) tree.Insert({a, b});
  }
  tree.CountTransaction({0, 1, 2, 3, 4, 5});
  tree.ForEach([&](const std::vector<ItemId>& items, int64_t count) {
    EXPECT_EQ(count, 1) << items[0] << "," << items[1];
  });
}

TEST(HashTreeTest, MatchesNaiveCountingOnRandomData) {
  Rng rng(71);
  // Random candidate set of 3-itemsets over 12 items.
  std::set<std::vector<ItemId>> candidates;
  while (candidates.size() < 40) {
    std::set<ItemId> s;
    while (s.size() < 3) s.insert(static_cast<ItemId>(rng.Uniform(12)));
    candidates.insert(std::vector<ItemId>(s.begin(), s.end()));
  }
  HashTree tree(3, 4, 5);
  for (const auto& c : candidates) tree.Insert(c);
  EXPECT_EQ(tree.size(), 40u);

  std::map<std::vector<ItemId>, int64_t> naive;
  for (int t = 0; t < 300; ++t) {
    std::set<ItemId> txn_set;
    const size_t len = 2 + rng.Uniform(7);
    while (txn_set.size() < len) {
      txn_set.insert(static_cast<ItemId>(rng.Uniform(12)));
    }
    std::vector<ItemId> txn(txn_set.begin(), txn_set.end());
    tree.CountTransaction(txn);
    for (const auto& c : candidates) {
      if (std::includes(txn.begin(), txn.end(), c.begin(), c.end())) {
        ++naive[c];
      }
    }
  }
  tree.ForEach([&](const std::vector<ItemId>& items, int64_t count) {
    EXPECT_EQ(count, naive[items]) << "candidate mismatch";
  });
}

TEST(HashTreeTest, ShortTransactionsSkipped) {
  HashTree tree(3);
  tree.Insert({1, 2, 3});
  tree.CountTransaction({1, 2});  // too short to contain any 3-itemset
  tree.ForEach([&](const std::vector<ItemId>&, int64_t count) {
    EXPECT_EQ(count, 0);
  });
}

// --------------------------------------------------------------------------
// Apriori candidate generation
// --------------------------------------------------------------------------

TEST(AprioriCandidatesTest, JoinsSharedPrefixes) {
  // L2 = {12, 13, 14, 23}. Join: 123 (from 12+13), 124 (12+14), 134 (13+14).
  // Prune: 123 needs {23} ok; 124 needs {24} missing -> dropped;
  // 134 needs {34} missing -> dropped.
  auto candidates = AprioriMiner::GenerateCandidates(
      {{1, 2}, {1, 3}, {1, 4}, {2, 3}});
  EXPECT_EQ(candidates,
            (std::vector<std::vector<ItemId>>{{1, 2, 3}}));
}

TEST(AprioriCandidatesTest, Level2FromSingletons) {
  auto candidates = AprioriMiner::GenerateCandidates({{1}, {3}, {7}});
  EXPECT_EQ(candidates, (std::vector<std::vector<ItemId>>{
                            {1, 3}, {1, 7}, {3, 7}}));
}

TEST(AprioriCandidatesTest, EmptyInput) {
  EXPECT_TRUE(AprioriMiner::GenerateCandidates({}).empty());
}

TEST(AprioriCandidatesTest, NoJoinableMembers) {
  EXPECT_TRUE(AprioriMiner::GenerateCandidates({{1, 2}, {3, 4}}).empty());
}

// --------------------------------------------------------------------------
// Oracle behaviours
// --------------------------------------------------------------------------

TEST(BruteForceTest, CountsExactSupports) {
  TransactionDb txns{
      {1, {1, 2, 3}}, {2, {1, 2}}, {3, {1, 3}}, {4, {2, 3}}, {5, {1, 2, 3}}};
  MiningOptions options;
  options.min_support_count = 2;
  BruteForceMiner miner;
  auto result = miner.Mine(txns, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.CountOf({1}), 4);
  EXPECT_EQ(result.value().itemsets.CountOf({1, 2}), 3);
  EXPECT_EQ(result.value().itemsets.CountOf({1, 2, 3}), 2);
}

TEST(BruteForceTest, MinSupportBoundary) {
  TransactionDb txns{{1, {1}}, {2, {1}}, {3, {2}}};
  MiningOptions options;
  options.min_support_count = 2;
  BruteForceMiner miner;
  auto result = miner.Mine(txns, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.CountOf({1}), 2);  // exactly at floor
  EXPECT_EQ(result.value().itemsets.CountOf({2}), 0);  // below
}

// Apriori's per-level candidate counts must never be below the number of
// frequent itemsets at that level (candidates are a superset of L_k), and
// AIS always generates at least as many candidates as Apriori on the same
// data (no prune step).
TEST(BaselineStatsTest, CandidateCountsDominateFrequentCounts) {
  QuestOptions gen;
  gen.seed = 1234;
  gen.num_transactions = 300;
  gen.avg_transaction_size = 6;
  gen.num_items = 20;
  TransactionDb txns = QuestGenerator(gen).Generate();
  MiningOptions options;
  options.min_support = 0.03;
  AprioriMiner apriori;
  auto result = apriori.Mine(txns, options);
  ASSERT_TRUE(result.ok());
  for (const auto& iter : result.value().iterations) {
    EXPECT_GE(iter.r_prime_rows, iter.c_size) << "level " << iter.k;
  }
}

}  // namespace
}  // namespace setm

// Second SQL engine suite: aggregate corner cases, coercions, and planner
// paths not covered by sql_test.cc.

#include <gtest/gtest.h>

#include "sql/engine.h"

namespace setm::sql {
namespace {

class SqlEngine2Test : public testing::Test {
 protected:
  SqlEngine2Test() : engine_(&db_) {}

  QueryResult MustRun(const std::string& sql, const Params& params = {}) {
    auto r = engine_.Execute(sql, params);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  Database db_;
  SqlEngine engine_;
};

TEST_F(SqlEngine2Test, HavingWithStrictGreaterGoesThroughResidualFilter) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1), (1), (2), (2), (2), (3)");
  // "> 2" cannot fold into the aggregation min_count (which handles >=);
  // it must work through the residual HAVING filter.
  auto r = MustRun(
      "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY a");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 2);
  EXPECT_EQ(r.rows[0].value(1).AsInt64(), 3);
}

TEST_F(SqlEngine2Test, HavingEqualityAndComposite) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1), (1), (2), (3), (3), (3)");
  auto r = MustRun(
      "SELECT a, COUNT(*) FROM t GROUP BY a "
      "HAVING COUNT(*) >= 2 AND COUNT(*) <= 2 ORDER BY a");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 1);
}

TEST_F(SqlEngine2Test, HavingParameterResidual) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (5), (5), (6)");
  auto r = MustRun(
      "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) < :cap",
      {{"cap", Value::Int64(2)}});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 6);
}

TEST_F(SqlEngine2Test, FractionalHavingBoundRoundsUp) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1), (1), (2)");
  // HAVING COUNT(*) >= 1.5 keeps groups with count >= 2.
  auto r = MustRun(
      "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) >= :minsupport",
      {{"minsupport", Value::Double(1.5)}});
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 1);
}

TEST_F(SqlEngine2Test, AggregateOrderByCountColumnViaCountStar) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (7), (8), (8), (9), (9), (9)");
  auto r = MustRun(
      "SELECT a, COUNT(*) FROM t GROUP BY a ORDER BY COUNT(*)");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 7);
  EXPECT_EQ(r.rows[2].value(0).AsInt32(), 9);
}

TEST_F(SqlEngine2Test, GroupByMultipleColumns) {
  MustRun("CREATE TABLE t (a INT, b INT)");
  MustRun("INSERT INTO t VALUES (1,1), (1,1), (1,2), (2,1)");
  auto r = MustRun(
      "SELECT a, b, COUNT(*) FROM t GROUP BY a, b ORDER BY a, b");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].value(2).AsInt64(), 2);
}

TEST_F(SqlEngine2Test, SelectLiteralColumn) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1), (2)");
  auto r = MustRun("SELECT a, 42 FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].value(1).AsInt64(), 42);
}

TEST_F(SqlEngine2Test, InsertParameterizedValues) {
  MustRun("CREATE TABLE t (a INT, b DOUBLE)");
  MustRun("INSERT INTO t VALUES (:x, :y)",
          {{"x", Value::Int64(7)}, {"y", Value::Double(2.5)}});
  auto r = MustRun("SELECT a, b FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 7);
  EXPECT_DOUBLE_EQ(r.rows[0].value(1).AsDouble(), 2.5);
}

TEST_F(SqlEngine2Test, IntToDoubleCoercionInInsert) {
  MustRun("CREATE TABLE t (d DOUBLE)");
  MustRun("INSERT INTO t VALUES (3)");
  auto r = MustRun("SELECT d FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0].value(0).AsDouble(), 3.0);
}

TEST_F(SqlEngine2Test, DoubleToIntCoercionRejected) {
  MustRun("CREATE TABLE t (a INT)");
  EXPECT_FALSE(engine_.Execute("INSERT INTO t VALUES (1.5)").ok());
}

TEST_F(SqlEngine2Test, MemoryVsHeapTablesBehaveIdentically) {
  MustRun("CREATE MEMORY TABLE m (a INT)");
  MustRun("CREATE TABLE h (a INT)");
  for (const char* table : {"m", "h"}) {
    MustRun(std::string("INSERT INTO ") + table + " VALUES (3), (1), (2)");
    auto r = MustRun(std::string("SELECT a FROM ") + table + " ORDER BY a");
    ASSERT_EQ(r.rows.size(), 3u);
    EXPECT_EQ(r.rows[0].value(0).AsInt32(), 1);
    EXPECT_EQ(r.rows[2].value(0).AsInt32(), 3);
  }
}

TEST_F(SqlEngine2Test, WhereOnStringColumn) {
  MustRun("CREATE TABLE t (name VARCHAR(10), n INT)");
  MustRun("INSERT INTO t VALUES ('bread', 1), ('milk', 2), ('bread', 3)");
  auto r = MustRun("SELECT n FROM t WHERE name = 'bread' ORDER BY n");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[1].value(0).AsInt32(), 3);
}

TEST_F(SqlEngine2Test, JoinOnStringKeys) {
  MustRun("CREATE TABLE l (k VARCHAR(5), v INT)");
  MustRun("CREATE TABLE r (k VARCHAR(5), w INT)");
  MustRun("INSERT INTO l VALUES ('a', 1), ('b', 2)");
  MustRun("INSERT INTO r VALUES ('b', 20), ('c', 30)");
  auto q = MustRun("SELECT l.v, r.w FROM l, r WHERE l.k = r.k");
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0].value(0).AsInt32(), 2);
  EXPECT_EQ(q.rows[0].value(1).AsInt32(), 20);
}

TEST_F(SqlEngine2Test, ConstantPredicateFalseYieldsEmpty) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1)");
  auto r = MustRun("SELECT a FROM t WHERE 1 = 2");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(SqlEngine2Test, FourWayJoinChain) {
  for (const char* ddl :
       {"CREATE TABLE t1 (a INT)", "CREATE TABLE t2 (a INT, b INT)",
        "CREATE TABLE t3 (b INT, c INT)", "CREATE TABLE t4 (c INT)"}) {
    MustRun(ddl);
  }
  MustRun("INSERT INTO t1 VALUES (1), (2)");
  MustRun("INSERT INTO t2 VALUES (1, 10), (2, 20)");
  MustRun("INSERT INTO t3 VALUES (10, 100), (20, 200)");
  MustRun("INSERT INTO t4 VALUES (100)");
  auto r = MustRun(
      "SELECT t1.a FROM t1, t2, t3, t4 "
      "WHERE t1.a = t2.a AND t2.b = t3.b AND t3.c = t4.c");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 1);
}

TEST_F(SqlEngine2Test, InsertSelectArityMismatchRejected) {
  MustRun("CREATE TABLE src (a INT, b INT)");
  MustRun("CREATE TABLE dst (a INT)");
  MustRun("INSERT INTO src VALUES (1, 2)");
  EXPECT_FALSE(engine_.Execute("INSERT INTO dst SELECT a, b FROM src").ok());
}

TEST_F(SqlEngine2Test, DistinctAcrossJoin) {
  MustRun("CREATE TABLE s (tid INT, item INT)");
  MustRun("INSERT INTO s VALUES (1,1), (1,2), (2,1), (2,2), (3,1)");
  auto r = MustRun(
      "SELECT DISTINCT a.item FROM s a, s b "
      "WHERE a.tid = b.tid AND b.item > a.item");
  // Items that appear as the smaller element of a pair: only item 1.
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 1);
}

TEST_F(SqlEngine2Test, EmptyTableAggregatesToNothing) {
  MustRun("CREATE TABLE t (a INT)");
  auto r = MustRun("SELECT a, COUNT(*) FROM t GROUP BY a");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(SqlEngine2Test, OrderByUnknownColumnFails) {
  MustRun("CREATE TABLE t (a INT)");
  EXPECT_FALSE(engine_.Execute("SELECT a FROM t ORDER BY zzz").ok());
}

TEST_F(SqlEngine2Test, DeleteThenReuseTable) {
  MustRun("CREATE TABLE t (a INT)");
  MustRun("INSERT INTO t VALUES (1)");
  MustRun("DELETE FROM t");
  MustRun("INSERT INTO t VALUES (2)");
  auto r = MustRun("SELECT a FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0].value(0).AsInt32(), 2);
}

}  // namespace
}  // namespace setm::sql

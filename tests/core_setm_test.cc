// Tests for Algorithm SETM: the paper's worked example as a golden test,
// equivalence with the brute-force oracle, storage-mode equivalence and
// iteration statistics.

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/paper_example.h"
#include "core/rules.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"

namespace setm {
namespace {

std::vector<ItemId> Items(std::initializer_list<ItemId> items) {
  return std::vector<ItemId>(items);
}

// --------------------------------------------------------------------------
// Golden test: the Sections 4.2 worked example.
// --------------------------------------------------------------------------

class PaperExampleTest : public testing::Test {
 protected:
  void SetUp() override {
    Database db;
    SetmMiner miner(&db);
    auto result = miner.Mine(PaperExampleTransactions(), PaperExampleOptions());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    result_ = std::move(result).value();
  }
  MiningResult result_;
};

TEST_F(PaperExampleTest, C1HoldsSupportedItems) {
  // Supports: A=6, B=4, C=4, D=6, E=4, F=3 (G=2, H=1 fail the 30% floor).
  const auto& c1 = result_.itemsets.OfSize(1);
  ASSERT_EQ(c1.size(), 6u);
  EXPECT_EQ(result_.itemsets.CountOf(Items({0})), 6);  // A
  EXPECT_EQ(result_.itemsets.CountOf(Items({1})), 4);  // B
  EXPECT_EQ(result_.itemsets.CountOf(Items({2})), 4);  // C
  EXPECT_EQ(result_.itemsets.CountOf(Items({3})), 6);  // D
  EXPECT_EQ(result_.itemsets.CountOf(Items({4})), 4);  // E
  EXPECT_EQ(result_.itemsets.CountOf(Items({5})), 3);  // F
  EXPECT_EQ(result_.itemsets.CountOf(Items({6})), 0);  // G infrequent
  EXPECT_EQ(result_.itemsets.CountOf(Items({7})), 0);  // H infrequent
}

TEST_F(PaperExampleTest, C2MatchesFigure2) {
  const auto& c2 = result_.itemsets.OfSize(2);
  ASSERT_EQ(c2.size(), 6u);
  // Figure 2: AB, AC, BC, DE, DF, EF — all with count 3.
  EXPECT_EQ(result_.itemsets.CountOf(Items({0, 1})), 3);  // AB
  EXPECT_EQ(result_.itemsets.CountOf(Items({0, 2})), 3);  // AC
  EXPECT_EQ(result_.itemsets.CountOf(Items({1, 2})), 3);  // BC
  EXPECT_EQ(result_.itemsets.CountOf(Items({3, 4})), 3);  // DE
  EXPECT_EQ(result_.itemsets.CountOf(Items({3, 5})), 3);  // DF
  EXPECT_EQ(result_.itemsets.CountOf(Items({4, 5})), 3);  // EF
  // Pairs that must NOT be frequent.
  EXPECT_EQ(result_.itemsets.CountOf(Items({0, 3})), 0);  // AD: 2 < 3
  EXPECT_EQ(result_.itemsets.CountOf(Items({1, 3})), 0);  // BD: 2 < 3
}

TEST_F(PaperExampleTest, C3MatchesFigure3) {
  const auto& c3 = result_.itemsets.OfSize(3);
  ASSERT_EQ(c3.size(), 1u);
  EXPECT_EQ(c3[0].items, Items({3, 4, 5}));  // DEF
  EXPECT_EQ(c3[0].count, 3);
  // ABC occurs only twice (transactions 10 and 30).
  EXPECT_EQ(result_.itemsets.CountOf(Items({0, 1, 2})), 0);
  EXPECT_EQ(result_.itemsets.MaxSize(), 3u);
}

TEST_F(PaperExampleTest, TerminatesWithEmptyLevel) {
  // The algorithm must have stopped: no level 4 patterns.
  EXPECT_TRUE(result_.itemsets.OfSize(4).empty());
  ASSERT_GE(result_.iterations.size(), 3u);
  // |R_2| = 6 patterns x 3 transactions = 18 tuples.
  EXPECT_EQ(result_.iterations[1].r_rows, 18u);
  // |R_3| = 1 pattern x 3 transactions.
  EXPECT_EQ(result_.iterations[2].r_rows, 3u);
}

TEST_F(PaperExampleTest, RulesMatchSection5) {
  auto rules =
      GenerateRules(result_.itemsets, PaperExampleOptions()).value();
  // Expected: 8 single-antecedent rules + 3 two-antecedent rules.
  ASSERT_EQ(rules.size(), 11u);

  auto has_rule = [&](std::vector<ItemId> ante, ItemId cons, double conf) {
    for (const auto& r : rules) {
      if (r.antecedent == ante && r.consequent == Items({cons})) {
        EXPECT_NEAR(r.confidence, conf, 1e-9);
        EXPECT_NEAR(r.support, 0.30, 1e-9);
        return true;
      }
    }
    return false;
  };
  constexpr ItemId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5;
  // Section 5's list after C2:
  EXPECT_TRUE(has_rule({B}, A, 0.75));
  EXPECT_TRUE(has_rule({C}, A, 0.75));
  EXPECT_TRUE(has_rule({B}, C, 0.75));
  EXPECT_TRUE(has_rule({C}, B, 0.75));
  EXPECT_TRUE(has_rule({E}, D, 0.75));
  EXPECT_TRUE(has_rule({F}, D, 1.00));
  EXPECT_TRUE(has_rule({E}, F, 0.75));
  EXPECT_TRUE(has_rule({F}, E, 1.00));
  // And after C3:
  EXPECT_TRUE(has_rule({D, E}, F, 1.00));
  EXPECT_TRUE(has_rule({D, F}, E, 1.00));
  EXPECT_TRUE(has_rule({E, F}, D, 1.00));

  // A => B must be absent: |AB|/|A| = 3/6 = 50% < 70%.
  EXPECT_FALSE(has_rule({A}, B, 0.5));
}

TEST_F(PaperExampleTest, RuleFormattingMatchesPaperStyle) {
  auto rules =
      GenerateRules(result_.itemsets, PaperExampleOptions()).value();
  // Find B ==> A and check the exact rendering from Section 5.
  bool found = false;
  for (const auto& r : rules) {
    if (r.antecedent == Items({1}) && r.consequent == Items({0})) {
      EXPECT_EQ(FormatRule(r, PaperItemName), "B ==> A, [75.0%, 30.0%]");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// --------------------------------------------------------------------------
// Equivalence with the brute-force oracle, parameterized over minsup and
// data shapes (property: SETM output == exhaustive enumeration).
// --------------------------------------------------------------------------

struct EquivalenceCase {
  uint64_t seed;
  double min_support;
  uint32_t num_transactions;
  double avg_size;
  uint32_t num_items;
};

class SetmEquivalenceTest : public testing::TestWithParam<EquivalenceCase> {};

TEST_P(SetmEquivalenceTest, MatchesBruteForce) {
  const EquivalenceCase& c = GetParam();
  QuestOptions gen_options;
  gen_options.seed = c.seed;
  gen_options.num_transactions = c.num_transactions;
  gen_options.avg_transaction_size = c.avg_size;
  gen_options.num_items = c.num_items;
  gen_options.num_patterns = 20;
  TransactionDb txns = QuestGenerator(gen_options).Generate();

  MiningOptions options;
  options.min_support = c.min_support;

  Database db;
  SetmMiner setm(&db);
  auto setm_result = setm.Mine(txns, options);
  ASSERT_TRUE(setm_result.ok()) << setm_result.status().ToString();

  BruteForceMiner oracle;
  auto oracle_result = oracle.Mine(txns, options);
  ASSERT_TRUE(oracle_result.ok());

  EXPECT_TRUE(setm_result.value().itemsets == oracle_result.value().itemsets)
      << "SETM found " << setm_result.value().itemsets.TotalPatterns()
      << " patterns, oracle " << oracle_result.value().itemsets.TotalPatterns();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SetmEquivalenceTest,
    testing::Values(EquivalenceCase{1, 0.05, 200, 4, 20},
                    EquivalenceCase{2, 0.10, 150, 5, 15},
                    EquivalenceCase{3, 0.02, 400, 3, 30},
                    EquivalenceCase{4, 0.15, 100, 6, 10},
                    EquivalenceCase{5, 0.01, 500, 4, 50},
                    EquivalenceCase{6, 0.08, 250, 8, 12},
                    EquivalenceCase{7, 0.30, 60, 5, 8},
                    EquivalenceCase{8, 0.05, 300, 2, 25}));

// --------------------------------------------------------------------------
// Storage-mode and option behaviour.
// --------------------------------------------------------------------------

TEST(SetmModesTest, HeapAndMemoryBackingsAgree) {
  QuestOptions gen;
  gen.num_transactions = 300;
  gen.avg_transaction_size = 5;
  gen.num_items = 25;
  gen.seed = 99;
  TransactionDb txns = QuestGenerator(gen).Generate();
  MiningOptions options;
  options.min_support = 0.04;

  Database db_mem;
  SetmMiner mem(&db_mem, SetmOptions{TableBacking::kMemory});
  auto mem_result = mem.Mine(txns, options);
  ASSERT_TRUE(mem_result.ok());

  Database db_heap;
  SetmMiner heap(&db_heap, SetmOptions{TableBacking::kHeap});
  auto heap_result = heap.Mine(txns, options);
  ASSERT_TRUE(heap_result.ok());

  EXPECT_TRUE(mem_result.value().itemsets == heap_result.value().itemsets);
  // Heap mode produces real page traffic; memory mode touches only temp
  // spill space (none at this size).
  EXPECT_GT(heap_result.value().io.pages_allocated,
            mem_result.value().io.pages_allocated);
}

TEST(SetmModesTest, FilterR1DoesNotChangeResults) {
  QuestOptions gen;
  gen.num_transactions = 250;
  gen.seed = 7;
  gen.avg_transaction_size = 4;
  gen.num_items = 40;
  TransactionDb txns = QuestGenerator(gen).Generate();
  MiningOptions plain;
  plain.min_support = 0.05;
  MiningOptions filtered = plain;
  filtered.filter_r1 = true;

  Database db1, db2;
  auto r1 = SetmMiner(&db1).Mine(txns, plain);
  auto r2 = SetmMiner(&db2).Mine(txns, filtered);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r1.value().itemsets == r2.value().itemsets);
}

TEST(SetmModesTest, MaxPatternLengthTruncatesLoop) {
  TransactionDb txns = PaperExampleTransactions();
  MiningOptions options = PaperExampleOptions();
  options.max_pattern_length = 2;
  Database db;
  auto result = SetmMiner(&db).Mine(txns, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.MaxSize(), 2u);
  EXPECT_EQ(result.value().itemsets.OfSize(2).size(), 6u);
}

TEST(SetmModesTest, AbsoluteMinSupportCountOverridesFraction) {
  TransactionDb txns = PaperExampleTransactions();
  MiningOptions options;
  options.min_support = 0.99;     // would kill everything
  options.min_support_count = 3;  // but the absolute count wins
  Database db;
  auto result = SetmMiner(&db).Mine(txns, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.OfSize(1).size(), 6u);
}

TEST(SetmModesTest, EmptyDatabase) {
  Database db;
  auto result = SetmMiner(&db).Mine({}, MiningOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.TotalPatterns(), 0u);
  EXPECT_EQ(result.value().itemsets.num_transactions, 0u);
}

TEST(SetmModesTest, SingleItemTransactions) {
  TransactionDb txns;
  for (int i = 0; i < 10; ++i) txns.push_back({i, {1}});
  MiningOptions options;
  options.min_support = 0.5;
  Database db;
  auto result = SetmMiner(&db).Mine(txns, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.TotalPatterns(), 1u);
  EXPECT_EQ(result.value().itemsets.CountOf({1}), 10);
}

TEST(SetmModesTest, RejectsUnsortedTransactionItems) {
  TransactionDb txns{{1, {3, 1, 2}}};
  Database db;
  EXPECT_FALSE(SetmMiner(&db).Mine(txns, MiningOptions{}).ok());
}

TEST(SetmModesTest, RejectsDuplicateItems) {
  TransactionDb txns{{1, {2, 2}}};
  Database db;
  EXPECT_FALSE(SetmMiner(&db).Mine(txns, MiningOptions{}).ok());
}

TEST(SetmModesTest, IterationStatsAreConsistent) {
  QuestOptions gen;
  gen.num_transactions = 200;
  gen.avg_transaction_size = 6;
  gen.num_items = 15;
  gen.seed = 31;
  TransactionDb txns = QuestGenerator(gen).Generate();
  MiningOptions options;
  options.min_support = 0.05;
  Database db;
  auto result = SetmMiner(&db).Mine(txns, options);
  ASSERT_TRUE(result.ok());
  const auto& iters = result.value().iterations;
  ASSERT_GE(iters.size(), 2u);
  EXPECT_EQ(iters[0].k, 1u);
  for (size_t i = 0; i < iters.size(); ++i) {
    EXPECT_EQ(iters[i].k, i + 1);
    EXPECT_EQ(iters[i].c_size, result.value().itemsets.OfSize(i + 1).size());
    // R_k never exceeds R'_k.
    EXPECT_LE(iters[i].r_rows, iters[i].r_prime_rows);
    // Size accounting: bytes = rows x (k + 1) x 4.
    EXPECT_EQ(iters[i].r_bytes, iters[i].r_rows * (i + 2) * 4);
  }
}

// Support anti-monotonicity: every (k-1)-subset of a frequent k-pattern is
// frequent with at least the same count.
TEST(SetmPropertiesTest, SupportIsAntiMonotone) {
  QuestOptions gen;
  gen.num_transactions = 400;
  gen.avg_transaction_size = 6;
  gen.num_items = 20;
  gen.seed = 555;
  TransactionDb txns = QuestGenerator(gen).Generate();
  MiningOptions options;
  options.min_support = 0.03;
  Database db;
  auto result = SetmMiner(&db).Mine(txns, options);
  ASSERT_TRUE(result.ok());
  const auto& itemsets = result.value().itemsets;
  for (size_t k = 2; k <= itemsets.MaxSize(); ++k) {
    for (const auto& pattern : itemsets.OfSize(k)) {
      for (size_t drop = 0; drop < pattern.items.size(); ++drop) {
        std::vector<ItemId> subset;
        for (size_t i = 0; i < pattern.items.size(); ++i) {
          if (i != drop) subset.push_back(pattern.items[i]);
        }
        const int64_t subset_count = itemsets.CountOf(subset);
        EXPECT_GE(subset_count, pattern.count);
        EXPECT_GT(subset_count, 0);
      }
    }
  }
}

}  // namespace
}  // namespace setm

// Tests for the hash-based aggregation/join alternatives and their
// result-equivalence with the paper's sort-based pipeline.

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"
#include "exec/external_sort.h"
#include "exec/hash_operators.h"
#include "exec/operators.h"
#include "sql/engine.h"

namespace setm {
namespace {

Schema TwoIntSchema() {
  return Schema(
      {Column{"a", ValueType::kInt32}, Column{"b", ValueType::kInt32}});
}

std::unique_ptr<MemTable> MakeTable(
    const std::vector<std::pair<int, int>>& rows) {
  auto t = std::make_unique<MemTable>("t", TwoIntSchema());
  for (auto [a, b] : rows) {
    EXPECT_TRUE(t->Insert(Tuple({Value::Int32(a), Value::Int32(b)})).ok());
  }
  return t;
}

std::vector<std::vector<int>> DrainWide(TupleIterator* it) {
  std::vector<std::vector<int>> out;
  Tuple row;
  while (true) {
    auto more = it->Next(&row);
    EXPECT_TRUE(more.ok()) << more.status().ToString();
    if (!more.ok() || !more.value()) break;
    std::vector<int> vals;
    for (size_t i = 0; i < row.NumValues(); ++i) {
      vals.push_back(static_cast<int>(row.value(i).IsNumeric()
                                          ? row.value(i).NumericInt()
                                          : 0));
    }
    out.push_back(std::move(vals));
  }
  return out;
}

// --------------------------------------------------------------------------
// HashGroupCountIterator
// --------------------------------------------------------------------------

TEST(HashGroupCountTest, CountsUnsortedInput) {
  auto t = MakeTable({{3, 0}, {1, 0}, {3, 0}, {2, 0}, {3, 0}, {1, 0}});
  HashGroupCountIterator counts(t->Scan(), {0}, 0);
  EXPECT_EQ(DrainWide(&counts),
            (std::vector<std::vector<int>>{{1, 2}, {2, 1}, {3, 3}}));
}

TEST(HashGroupCountTest, MinCountFilters) {
  auto t = MakeTable({{1, 0}, {1, 0}, {2, 0}});
  HashGroupCountIterator counts(t->Scan(), {0}, 2);
  EXPECT_EQ(DrainWide(&counts), (std::vector<std::vector<int>>{{1, 2}}));
}

TEST(HashGroupCountTest, MatchesSortBasedPipeline) {
  Database db;
  ExecContext ctx = ExecContext::From(&db);
  Rng rng(55);
  std::vector<std::pair<int, int>> rows;
  for (int i = 0; i < 3000; ++i) {
    rows.emplace_back(static_cast<int>(rng.Uniform(40)),
                      static_cast<int>(rng.Uniform(40)));
  }
  auto t1 = MakeTable(rows);
  auto t2 = MakeTable(rows);
  auto sorted = std::make_unique<SortIterator>(ctx, t1->Scan(),
                                               TupleComparator({0, 1}));
  SortedGroupCountIterator sort_counts(std::move(sorted), {0, 1}, 3);
  HashGroupCountIterator hash_counts(t2->Scan(), {0, 1}, 3);
  EXPECT_EQ(DrainWide(&sort_counts), DrainWide(&hash_counts));
}

TEST(HashGroupCountTest, EmptyInput) {
  auto t = MakeTable({});
  HashGroupCountIterator counts(t->Scan(), {0}, 0);
  Tuple row;
  auto more = counts.Next(&row);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(more.value());
}

// --------------------------------------------------------------------------
// HashJoinIterator
// --------------------------------------------------------------------------

TEST(HashJoinTest, MatchesMergeJoinOnRandomData) {
  Rng rng(66);
  std::vector<std::pair<int, int>> left_rows, right_rows;
  for (int i = 0; i < 500; ++i) {
    left_rows.emplace_back(static_cast<int>(rng.Uniform(50)), i);
    right_rows.emplace_back(static_cast<int>(rng.Uniform(50)), -i);
  }
  std::sort(left_rows.begin(), left_rows.end());
  std::sort(right_rows.begin(), right_rows.end());
  auto l1 = MakeTable(left_rows);
  auto r1 = MakeTable(right_rows);
  auto l2 = MakeTable(left_rows);
  auto r2 = MakeTable(right_rows);

  MergeJoinIterator merge(l1->Scan(), r1->Scan(), {0}, {0}, nullptr);
  HashJoinIterator hash(l2->Scan(), r2->Scan(), {0}, {0}, nullptr);
  auto a = DrainWide(&merge);
  auto b = DrainWide(&hash);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(HashJoinTest, ResidualApplies) {
  auto l = MakeTable({{1, 10}, {1, 20}});
  auto r = MakeTable({{1, 15}});
  HashJoinIterator join(l->Scan(), r->Scan(), {0}, {0},
                        Binary(BinaryOp::kGt, Col(3), Col(1)));
  // Keep rows where right payload (15) > left payload.
  EXPECT_EQ(DrainWide(&join),
            (std::vector<std::vector<int>>{{1, 10, 1, 15}}));
}

TEST(HashJoinTest, NoMatches) {
  auto l = MakeTable({{1, 0}});
  auto r = MakeTable({{2, 0}});
  HashJoinIterator join(l->Scan(), r->Scan(), {0}, {0}, nullptr);
  EXPECT_TRUE(DrainWide(&join).empty());
}

// --------------------------------------------------------------------------
// SETM with hash counting; SQL engine with hash joins.
// --------------------------------------------------------------------------

TEST(SetmCountMethodTest, HashCountingMatchesSortCounting) {
  QuestOptions gen;
  gen.num_transactions = 400;
  gen.avg_transaction_size = 5;
  gen.num_items = 30;
  gen.seed = 77;
  TransactionDb txns = QuestGenerator(gen).Generate();
  MiningOptions options;
  options.min_support = 0.03;

  Database db1, db2;
  SetmOptions sort_opts;
  sort_opts.count_method = CountMethod::kSortMerge;
  SetmOptions hash_opts;
  hash_opts.count_method = CountMethod::kHash;
  auto a = SetmMiner(&db1, sort_opts).Mine(txns, options);
  auto b = SetmMiner(&db2, hash_opts).Mine(txns, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.value().itemsets == b.value().itemsets);
}

TEST(SetmCountMethodTest, PaperExampleUnderHashCounting) {
  Database db;
  SetmOptions opts;
  opts.count_method = CountMethod::kHash;
  auto result =
      SetmMiner(&db, opts).Mine(PaperExampleTransactions(), PaperExampleOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.OfSize(2).size(), 6u);
  EXPECT_EQ(result.value().itemsets.OfSize(3).size(), 1u);
}

TEST(SqlJoinStrategyTest, HashJoinGivesSameQueryResults) {
  Database db;
  sql::SqlEngine merge_engine(&db);
  sql::SqlEngineOptions hash_options;
  hash_options.join_strategy = sql::JoinStrategy::kHash;
  sql::SqlEngine hash_engine(&db, hash_options);

  ASSERT_TRUE(
      merge_engine.Execute("CREATE TABLE sales (trans_id INT, item INT)").ok());
  ASSERT_TRUE(merge_engine
                  .Execute("INSERT INTO sales VALUES (1,1),(1,2),(1,3),"
                           "(2,1),(2,2),(3,2),(3,3)")
                  .ok());
  const std::string query =
      "SELECT r1.trans_id, r1.item, r2.item FROM sales r1, sales r2 "
      "WHERE r1.trans_id = r2.trans_id AND r2.item > r1.item "
      "ORDER BY r1.trans_id, r1.item, r2.item";
  auto a = merge_engine.Execute(query);
  auto b = hash_engine.Execute(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().rows.size(), b.value().rows.size());
  for (size_t i = 0; i < a.value().rows.size(); ++i) {
    EXPECT_TRUE(a.value().rows[i] == b.value().rows[i]);
  }
}

}  // namespace
}  // namespace setm

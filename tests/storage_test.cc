// Unit tests for src/storage: backends, IoStats classification, buffer pool
// and the slotted-page table heap.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/storage_backend.h"
#include "storage/table_heap.h"

namespace setm {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// --------------------------------------------------------------------------
// MemoryBackend
// --------------------------------------------------------------------------

TEST(MemoryBackendTest, AllocateReadWriteRoundTrip) {
  IoStats stats;
  MemoryBackend backend(&stats);
  auto id = backend.AllocatePage();
  ASSERT_TRUE(id.ok());
  Page page;
  page.Clear();
  page.data[0] = 'x';
  page.data[kPageSize - 1] = 'y';
  ASSERT_TRUE(backend.WritePage(id.value(), page).ok());
  Page out;
  ASSERT_TRUE(backend.ReadPage(id.value(), &out).ok());
  EXPECT_EQ(out.data[0], 'x');
  EXPECT_EQ(out.data[kPageSize - 1], 'y');
}

TEST(MemoryBackendTest, FreshPageIsZeroed) {
  MemoryBackend backend(nullptr);
  auto id = backend.AllocatePage();
  ASSERT_TRUE(id.ok());
  Page out;
  ASSERT_TRUE(backend.ReadPage(id.value(), &out).ok());
  for (size_t i = 0; i < kPageSize; i += 512) EXPECT_EQ(out.data[i], 0);
}

TEST(MemoryBackendTest, UnallocatedAccessFails) {
  MemoryBackend backend(nullptr);
  Page page;
  EXPECT_TRUE(backend.ReadPage(3, &page).IsInvalidArgument());
  EXPECT_TRUE(backend.WritePage(3, page).IsInvalidArgument());
}

TEST(MemoryBackendTest, SequentialVsRandomClassification) {
  IoStats stats;
  MemoryBackend backend(&stats);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(backend.AllocatePage().ok());
  Page page;
  // Sequential walk 0..9: first read has no predecessor -> random.
  for (PageId i = 0; i < 10; ++i) ASSERT_TRUE(backend.ReadPage(i, &page).ok());
  EXPECT_EQ(stats.page_reads, 10u);
  EXPECT_EQ(stats.sequential_reads, 9u);
  EXPECT_EQ(stats.random_reads, 1u);
  // Jump back to page 0: random. Re-read same page: sequential (cached arm).
  ASSERT_TRUE(backend.ReadPage(0, &page).ok());
  ASSERT_TRUE(backend.ReadPage(0, &page).ok());
  EXPECT_EQ(stats.random_reads, 2u);
  EXPECT_EQ(stats.sequential_reads, 10u);
}

TEST(IoStatsTest, ModelSecondsUsesPaperCosts) {
  IoStats stats;
  stats.random_reads = 100;   // 100 x 20ms = 2s
  stats.sequential_writes = 300;  // 300 x 10ms = 3s
  stats.page_reads = 100;
  stats.page_writes = 300;
  EXPECT_DOUBLE_EQ(stats.ModelSeconds(), 5.0);
  EXPECT_EQ(stats.TotalAccesses(), 400u);
}

TEST(IoStatsTest, AccumulateAndReset) {
  IoStats a, b;
  a.page_reads = 5;
  b.page_reads = 7;
  b.random_writes = 2;
  a += b;
  EXPECT_EQ(a.page_reads, 12u);
  EXPECT_EQ(a.random_writes, 2u);
  a.Reset();
  EXPECT_EQ(a.page_reads, 0u);
  EXPECT_FALSE(a.ToString().empty());
}

// --------------------------------------------------------------------------
// FileBackend
// --------------------------------------------------------------------------

TEST(FileBackendTest, RoundTripAndPersistence) {
  const std::string path = TempPath("file_backend_test.db");
  IoStats stats;
  {
    auto backend = FileBackend::Open(path, &stats);
    ASSERT_TRUE(backend.ok());
    auto id = (*backend)->AllocatePage();
    ASSERT_TRUE(id.ok());
    Page page;
    page.Clear();
    std::snprintf(page.data, kPageSize, "persisted");
    ASSERT_TRUE((*backend)->WritePage(id.value(), page).ok());
  }
  {
    // Re-open without truncation: the page must still be there.
    auto backend = FileBackend::Open(path, &stats, /*truncate=*/false);
    ASSERT_TRUE(backend.ok());
    EXPECT_EQ((*backend)->NumPages(), 1u);
    Page out;
    ASSERT_TRUE((*backend)->ReadPage(0, &out).ok());
    EXPECT_STREQ(out.data, "persisted");
  }
  std::remove(path.c_str());
}

TEST(FileBackendTest, TruncateDiscardsContent) {
  const std::string path = TempPath("file_backend_trunc.db");
  {
    auto backend = FileBackend::Open(path, nullptr);
    ASSERT_TRUE(backend.ok());
    ASSERT_TRUE((*backend)->AllocatePage().ok());
  }
  auto backend = FileBackend::Open(path, nullptr, /*truncate=*/true);
  ASSERT_TRUE(backend.ok());
  EXPECT_EQ((*backend)->NumPages(), 0u);
  std::remove(path.c_str());
}

TEST(FileBackendTest, OpenInvalidPathFails) {
  auto backend = FileBackend::Open("/nonexistent-dir-xyz/f.db", nullptr);
  EXPECT_FALSE(backend.ok());
  EXPECT_TRUE(backend.status().IsIOError());
}

// --------------------------------------------------------------------------
// BufferPool
// --------------------------------------------------------------------------

TEST(BufferPoolTest, NewPageIsPinnedAndWritable) {
  MemoryBackend backend(nullptr);
  BufferPool pool(&backend, 4);
  auto guard = pool.NewPage();
  ASSERT_TRUE(guard.ok());
  guard.value().page()->data[0] = 'a';
  guard.value().MarkDirty();
  EXPECT_TRUE(guard.value().valid());
}

TEST(BufferPoolTest, FetchHitsCache) {
  MemoryBackend backend(nullptr);
  BufferPool pool(&backend, 4);
  PageId id;
  {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard.value().id();
  }
  ASSERT_TRUE(pool.FetchPage(id).ok());
  ASSERT_TRUE(pool.FetchPage(id).ok());
  EXPECT_EQ(pool.hits(), 2u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  IoStats stats;
  MemoryBackend backend(&stats);
  BufferPool pool(&backend, 2);
  PageId first;
  {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    first = guard.value().id();
    guard.value().page()->data[0] = 'Z';
    guard.value().MarkDirty();
  }
  // Fill the pool with two more pages, evicting the first.
  for (int i = 0; i < 2; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
  }
  // Re-fetch: content must have survived the eviction round trip.
  auto again = pool.FetchPage(first);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().page()->data[0], 'Z');
}

TEST(BufferPoolTest, AllPinnedExhaustsPool) {
  MemoryBackend backend(nullptr);
  BufferPool pool(&backend, 2);
  auto g1 = pool.NewPage();
  auto g2 = pool.NewPage();
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto g3 = pool.NewPage();
  EXPECT_FALSE(g3.ok());
  EXPECT_EQ(g3.status().code(), StatusCode::kResourceExhausted);
  // Releasing a pin frees a frame.
  g1.value().Release();
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST(BufferPoolTest, LruEvictsLeastRecentlyUnpinned) {
  IoStats stats;
  MemoryBackend backend(&stats);
  BufferPool pool(&backend, 2);
  PageId a, b;
  {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
    a = g.value().id();
  }
  {
    auto g = pool.NewPage();
    ASSERT_TRUE(g.ok());
    b = g.value().id();
  }
  // Touch a so b becomes LRU.
  ASSERT_TRUE(pool.FetchPage(a).ok());
  const uint64_t misses_before = pool.misses();
  // New page evicts b (LRU), so fetching b misses but a still hits.
  ASSERT_TRUE(pool.NewPage().ok());
  ASSERT_TRUE(pool.FetchPage(a).ok());
  EXPECT_EQ(pool.misses(), misses_before);
  ASSERT_TRUE(pool.FetchPage(b).ok());
  EXPECT_EQ(pool.misses(), misses_before + 1);
}

TEST(BufferPoolTest, FlushAllPersistsDirtyFrames) {
  IoStats stats;
  MemoryBackend backend(&stats);
  BufferPool pool(&backend, 4);
  PageId id;
  {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard.value().id();
    guard.value().page()->data[7] = 42;
    guard.value().MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  Page raw;
  ASSERT_TRUE(backend.ReadPage(id, &raw).ok());
  EXPECT_EQ(raw.data[7], 42);
}

TEST(BufferPoolTest, MoveGuardTransfersPin) {
  MemoryBackend backend(nullptr);
  BufferPool pool(&backend, 1);
  auto g1 = pool.NewPage();
  ASSERT_TRUE(g1.ok());
  PageGuard moved = std::move(g1).value();
  EXPECT_TRUE(moved.valid());
  moved.Release();
  // Frame is free again.
  EXPECT_TRUE(pool.NewPage().ok());
}

// Concurrent pin/dirty/unpin traffic from several threads, with eviction
// pressure (pages outnumber frames). Each thread owns a disjoint page set;
// the pool's bookkeeping and the shared IoStats ledger must stay exact.
TEST(BufferPoolTest, ConcurrentFetchAndEvictIsSafe) {
  constexpr int kThreads = 4;
  constexpr int kPagesPerThread = 8;
  constexpr int kRounds = 200;
  IoStats stats;
  MemoryBackend backend(&stats);
  std::vector<PageId> ids;
  for (int i = 0; i < kThreads * kPagesPerThread; ++i) {
    auto id = backend.AllocatePage();
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }

  BufferPool pool(&backend, 8);  // far fewer frames than pages: evictions
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const PageId id = ids[t * kPagesPerThread + round % kPagesPerThread];
        auto guard = pool.FetchPage(id);
        if (!guard.ok()) {
          ++failures;
          return;
        }
        // First byte of each page carries its owner thread id.
        char* data = guard.value().page()->data;
        if (round >= kPagesPerThread && data[0] != static_cast<char>(t + 1)) {
          ++failures;
          return;
        }
        data[0] = static_cast<char>(t + 1);
        guard.value().MarkDirty();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(pool.FlushAll().ok());
  // Every page ends with its owner's mark, and the ledger balances: each
  // miss is one backend read.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPagesPerThread; ++i) {
      Page page;
      ASSERT_TRUE(backend.ReadPage(ids[t * kPagesPerThread + i], &page).ok());
      EXPECT_EQ(page.data[0], static_cast<char>(t + 1));
    }
  }
  EXPECT_EQ(stats.page_reads.load(),
            pool.misses() + kThreads * kPagesPerThread);
}

// --------------------------------------------------------------------------
// TableHeap
// --------------------------------------------------------------------------

class TableHeapTest : public testing::Test {
 protected:
  TableHeapTest() : backend_(&stats_), pool_(&backend_, 16) {}
  IoStats stats_;
  MemoryBackend backend_;
  BufferPool pool_;
};

TEST_F(TableHeapTest, InsertGetRoundTrip) {
  auto heap = TableHeap::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Insert("hello world");
  ASSERT_TRUE(rid.ok());
  std::string out;
  ASSERT_TRUE(heap->Get(rid.value(), &out).ok());
  EXPECT_EQ(out, "hello world");
  EXPECT_EQ(heap->live_records(), 1u);
}

TEST_F(TableHeapTest, EmptyRecordAllowed) {
  auto heap = TableHeap::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  auto rid = heap->Insert("");
  ASSERT_TRUE(rid.ok());
  std::string out = "sentinel";
  ASSERT_TRUE(heap->Get(rid.value(), &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(TableHeapTest, OversizedRecordRejected) {
  auto heap = TableHeap::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  std::string big(kPageSize, 'x');
  EXPECT_TRUE(heap->Insert(big).status().IsInvalidArgument());
}

TEST_F(TableHeapTest, SpansMultiplePages) {
  auto heap = TableHeap::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  const std::string record(100, 'r');
  const int n = 200;  // 200 x ~104 bytes > 4 KiB
  for (int i = 0; i < n; ++i) ASSERT_TRUE(heap->Insert(record).ok());
  EXPECT_GT(heap->num_pages(), 1u);
  EXPECT_EQ(heap->live_records(), static_cast<uint64_t>(n));
  // All records iterable, in order.
  int count = 0;
  for (auto it = heap->Begin(); it.Valid();) {
    EXPECT_EQ(it.record(), record);
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, n);
}

TEST_F(TableHeapTest, DeleteTombstonesRecord) {
  auto heap = TableHeap::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  auto r1 = heap->Insert("one");
  auto r2 = heap->Insert("two");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(heap->Delete(r1.value()).ok());
  std::string out;
  EXPECT_TRUE(heap->Get(r1.value(), &out).IsNotFound());
  ASSERT_TRUE(heap->Get(r2.value(), &out).ok());
  EXPECT_EQ(out, "two");
  EXPECT_EQ(heap->live_records(), 1u);
  // Deleting again is a no-op.
  ASSERT_TRUE(heap->Delete(r1.value()).ok());
  EXPECT_EQ(heap->live_records(), 1u);
}

TEST_F(TableHeapTest, IteratorSkipsDeleted) {
  auto heap = TableHeap::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  std::vector<Rid> rids;
  for (int i = 0; i < 10; ++i) {
    auto rid = heap->Insert("rec" + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids.push_back(rid.value());
  }
  for (int i = 0; i < 10; i += 2) ASSERT_TRUE(heap->Delete(rids[i]).ok());
  std::vector<std::string> seen;
  for (auto it = heap->Begin(); it.Valid();) {
    seen.push_back(it.record());
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"rec1", "rec3", "rec5", "rec7",
                                            "rec9"}));
}

TEST_F(TableHeapTest, ReopenFindsRecordsAndTail) {
  PageId first;
  {
    auto heap = TableHeap::Create(&pool_);
    ASSERT_TRUE(heap.ok());
    first = heap->first_page();
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(heap->Insert(std::string(50, 'a' + (i % 26))).ok());
    }
  }
  auto reopened = TableHeap::Open(&pool_, first);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->live_records(), 300u);
  // Appends after reopen land on the tail page, not a fresh chain.
  ASSERT_TRUE(reopened->Insert("tail").ok());
  EXPECT_EQ(reopened->live_records(), 301u);
}

TEST_F(TableHeapTest, GetInvalidSlotFails) {
  auto heap = TableHeap::Create(&pool_);
  ASSERT_TRUE(heap.ok());
  std::string out;
  EXPECT_TRUE(heap->Get(Rid{heap->first_page(), 5}, &out).IsNotFound());
}

}  // namespace
}  // namespace setm

// Randomized property tests: storage-layer fuzzing against reference
// models, and mining summaries (maximal/closed itemsets) checked against
// their definitions on random databases.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baselines/brute_force.h"
#include "common/random.h"
#include "core/itemset_utils.h"
#include "datagen/quest_generator.h"
#include "storage/buffer_pool.h"
#include "storage/table_heap.h"

namespace setm {
namespace {

// --------------------------------------------------------------------------
// Buffer pool fuzz: random page workloads must preserve page contents
// exactly, regardless of pool size.
// --------------------------------------------------------------------------

class BufferPoolFuzzTest : public testing::TestWithParam<size_t> {};

TEST_P(BufferPoolFuzzTest, ContentsSurviveArbitraryWorkloads) {
  const size_t pool_frames = GetParam();
  IoStats stats;
  MemoryBackend backend(&stats);
  BufferPool pool(&backend, pool_frames);
  Rng rng(1000 + pool_frames);
  std::map<PageId, uint64_t> reference;  // page -> stamp written at offset 0

  for (int op = 0; op < 3000; ++op) {
    const double dice = rng.NextDouble();
    if (dice < 0.25 || reference.empty()) {
      auto guard = pool.NewPage();
      ASSERT_TRUE(guard.ok());
      const uint64_t stamp = rng.Next();
      *guard.value().page()->As<uint64_t>() = stamp;
      guard.value().MarkDirty();
      reference[guard.value().id()] = stamp;
    } else if (dice < 0.65) {
      // Random read-back.
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      auto guard = pool.FetchPage(it->first);
      ASSERT_TRUE(guard.ok());
      ASSERT_EQ(*guard.value().page()->As<uint64_t>(), it->second)
          << "page " << it->first << " corrupted";
    } else if (dice < 0.9) {
      // Rewrite.
      auto it = reference.begin();
      std::advance(it, rng.Uniform(reference.size()));
      auto guard = pool.FetchPage(it->first);
      ASSERT_TRUE(guard.ok());
      const uint64_t stamp = rng.Next();
      *guard.value().page()->As<uint64_t>() = stamp;
      guard.value().MarkDirty();
      it->second = stamp;
    } else {
      ASSERT_TRUE(pool.FlushAll().ok());
    }
  }
  // Final full verification straight from the backend after a flush.
  ASSERT_TRUE(pool.FlushAll().ok());
  for (const auto& [id, stamp] : reference) {
    Page raw;
    ASSERT_TRUE(backend.ReadPage(id, &raw).ok());
    EXPECT_EQ(*raw.As<uint64_t>(), stamp);
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, BufferPoolFuzzTest,
                         testing::Values(1, 2, 4, 16, 128));

// --------------------------------------------------------------------------
// Table heap fuzz against a reference map.
// --------------------------------------------------------------------------

class TableHeapFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(TableHeapFuzzTest, MatchesReferenceModel) {
  IoStats stats;
  MemoryBackend backend(&stats);
  BufferPool pool(&backend, 32);
  auto heap = TableHeap::Create(&pool);
  ASSERT_TRUE(heap.ok());
  Rng rng(GetParam());

  std::map<std::pair<PageId, uint16_t>, std::string> reference;
  std::vector<Rid> live;

  for (int op = 0; op < 2000; ++op) {
    if (rng.NextDouble() < 0.7 || live.empty()) {
      std::string record(1 + rng.Uniform(200), 'a');
      for (char& c : record) {
        c = static_cast<char>('a' + rng.Uniform(26));
      }
      auto rid = heap->Insert(record);
      ASSERT_TRUE(rid.ok());
      reference[{rid.value().page_id, rid.value().slot}] = record;
      live.push_back(rid.value());
    } else {
      const size_t pick = rng.Uniform(live.size());
      const Rid rid = live[pick];
      ASSERT_TRUE(heap->Delete(rid).ok());
      reference.erase({rid.page_id, rid.slot});
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    }
  }

  EXPECT_EQ(heap->live_records(), reference.size());
  // Point lookups agree.
  for (const auto& [key, record] : reference) {
    std::string out;
    ASSERT_TRUE(heap->Get(Rid{key.first, key.second}, &out).ok());
    EXPECT_EQ(out, record);
  }
  // Full iteration visits exactly the live set.
  size_t seen = 0;
  for (auto it = heap->Begin(); it.Valid();) {
    auto ref = reference.find({it.rid().page_id, it.rid().slot});
    ASSERT_NE(ref, reference.end());
    EXPECT_EQ(it.record(), ref->second);
    ++seen;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(seen, reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TableHeapFuzzTest,
                         testing::Values(7, 8, 9, 10));

// --------------------------------------------------------------------------
// Maximal / closed itemset summaries on random data.
// --------------------------------------------------------------------------

class ItemsetSummaryTest : public testing::TestWithParam<uint64_t> {
 protected:
  FrequentItemsets MineRandom() {
    QuestOptions gen;
    gen.seed = GetParam();
    gen.num_transactions = 200;
    gen.avg_transaction_size = 5;
    gen.num_items = 14;
    TransactionDb txns = QuestGenerator(gen).Generate();
    MiningOptions options;
    options.min_support = 0.05;
    BruteForceMiner miner;
    auto result = miner.Mine(txns, options);
    EXPECT_TRUE(result.ok());
    return std::move(result).value().itemsets;
  }
};

TEST_P(ItemsetSummaryTest, MaximalSetsHaveNoFrequentSuperset) {
  FrequentItemsets itemsets = MineRandom();
  auto maximal = MaximalItemsets(itemsets);
  ASSERT_FALSE(maximal.empty());
  std::set<std::string> maximal_keys;
  for (const PatternCount& m : maximal) maximal_keys.insert(ItemsetKey(m.items));
  // (a) no maximal set is a subset of another frequent set of larger size;
  for (const PatternCount& m : maximal) {
    for (size_t k = m.items.size() + 1; k <= itemsets.MaxSize(); ++k) {
      for (const PatternCount& q : itemsets.OfSize(k)) {
        EXPECT_FALSE(std::includes(q.items.begin(), q.items.end(),
                                   m.items.begin(), m.items.end()))
            << "maximal set has frequent superset";
      }
    }
  }
  // (b) every frequent set is a subset of some maximal set.
  for (size_t k = 1; k <= itemsets.MaxSize(); ++k) {
    for (const PatternCount& p : itemsets.OfSize(k)) {
      bool covered = false;
      for (const PatternCount& m : maximal) {
        if (std::includes(m.items.begin(), m.items.end(), p.items.begin(),
                          p.items.end())) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered);
    }
  }
}

TEST_P(ItemsetSummaryTest, ClosedSetsPreserveAllSupports) {
  FrequentItemsets itemsets = MineRandom();
  auto closed = ClosedItemsets(itemsets);
  ASSERT_FALSE(closed.empty());
  // Every frequent set's support is recoverable from the closed summary.
  for (size_t k = 1; k <= itemsets.MaxSize(); ++k) {
    for (const PatternCount& p : itemsets.OfSize(k)) {
      EXPECT_EQ(SupportFromClosed(closed, p.items), p.count)
          << "support lost for a frequent set of size " << k;
    }
  }
  // Closed is a superset of maximal and a subset of all frequent sets.
  auto maximal = MaximalItemsets(itemsets);
  EXPECT_LE(maximal.size(), closed.size());
  EXPECT_LE(closed.size(), itemsets.TotalPatterns());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItemsetSummaryTest,
                         testing::Values(31, 32, 33, 34));

}  // namespace
}  // namespace setm

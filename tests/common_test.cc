// Unit tests for src/common: Status, Result, Rng, ZipfSampler.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace setm {
namespace {

// --------------------------------------------------------------------------
// Status
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kCorruption,
        StatusCode::kIOError, StatusCode::kNotSupported,
        StatusCode::kOutOfRange, StatusCode::kResourceExhausted,
        StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Corruption("x"));
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::Corruption("bad page"); };
  auto wrapper = [&]() -> Status {
    SETM_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsCorruption());
}

// --------------------------------------------------------------------------
// Result
// --------------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 3;
  EXPECT_EQ(r.ValueOr(-1), 3);
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Uniform(bound), bound);
    }
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::map<uint64_t, int> seen;
  for (int i = 0; i < 6000; ++i) ++seen[rng.Uniform(6)];
  ASSERT_EQ(seen.size(), 6u);
  for (const auto& [v, n] : seen) EXPECT_GT(n, 700) << "value " << v;
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, PoissonMeanIsClose) {
  Rng rng(17);
  for (double mean : {0.5, 2.0, 10.0, 40.0}) {
    double sum = 0;
    for (int i = 0; i < 20000; ++i) sum += rng.Poisson(mean);
    EXPECT_NEAR(sum / 20000.0, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, ExponentialMeanIsClose) {
  Rng rng(23);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.Exponential(3.0);
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.15);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// --------------------------------------------------------------------------
// ZipfSampler
// --------------------------------------------------------------------------

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(31);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 100u);
  }
}

TEST(ZipfTest, RankZeroIsMostPopular) {
  Rng rng(37);
  ZipfSampler zipf(50, 1.0);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  // Rank 0 should dominate rank 10 and rank 40.
  EXPECT_GT(counts[0], counts[10] * 2);
  EXPECT_GT(counts[0], (counts[40] + 1) * 5);
}

TEST(ZipfTest, MatchesTheoreticalHeadProbability) {
  // For s=1, n=100: P(rank 0) = 1 / H_100 ~ 1/5.187 ~ 0.1928.
  Rng rng(41);
  ZipfSampler zipf(100, 1.0);
  int head = 0;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) head += zipf.Sample(&rng) == 0;
  EXPECT_NEAR(head / static_cast<double>(trials), 0.1928, 0.01);
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  Rng rng(43);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

// --------------------------------------------------------------------------
// Logging
// --------------------------------------------------------------------------

TEST(LoggingTest, LevelRoundTrips) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(prev);
}

}  // namespace
}  // namespace setm

// Tests for the data generators (Quest-style and retail-calibrated) and
// transaction file I/O.

#include <gtest/gtest.h>

#include <set>

#include "baselines/apriori.h"
#include "datagen/quest_generator.h"
#include "datagen/retail_generator.h"
#include "datagen/transaction_io.h"

namespace setm {
namespace {

// --------------------------------------------------------------------------
// QuestGenerator
// --------------------------------------------------------------------------

TEST(QuestGeneratorTest, DeterministicForSeed) {
  QuestOptions options;
  options.num_transactions = 200;
  options.seed = 5;
  TransactionDb a = QuestGenerator(options).Generate();
  TransactionDb b = QuestGenerator(options).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].items, b[i].items);
  }
}

TEST(QuestGeneratorTest, DifferentSeedsDiffer) {
  QuestOptions options;
  options.num_transactions = 100;
  options.seed = 1;
  TransactionDb a = QuestGenerator(options).Generate();
  options.seed = 2;
  TransactionDb b = QuestGenerator(options).Generate();
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) differing += !(a[i].items == b[i].items);
  EXPECT_GT(differing, 50);
}

TEST(QuestGeneratorTest, OutputIsValidAndSized) {
  QuestOptions options;
  options.num_transactions = 500;
  options.avg_transaction_size = 8;
  options.num_items = 100;
  TransactionDb db = QuestGenerator(options).Generate();
  ASSERT_EQ(db.size(), 500u);
  ASSERT_TRUE(ValidateTransactions(db).ok());
  uint64_t total = 0;
  for (const auto& t : db) {
    EXPECT_FALSE(t.items.empty());
    for (ItemId item : t.items) {
      EXPECT_GE(item, 0);
      EXPECT_LT(item, 100);
    }
    total += t.items.size();
  }
  const double avg = static_cast<double>(total) / 500.0;
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 12.0);
}

TEST(QuestGeneratorTest, PlantedPatternsCreateFrequentItemsets) {
  // With low corruption and few patterns, frequent 2-itemsets must appear.
  QuestOptions options;
  options.num_transactions = 1000;
  options.avg_transaction_size = 8;
  options.num_items = 200;
  options.num_patterns = 10;
  options.corruption = 0.2;
  TransactionDb db = QuestGenerator(options).Generate();
  AprioriMiner miner;
  MiningOptions mining;
  mining.min_support = 0.02;
  auto result = miner.Mine(db, mining);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().itemsets.MaxSize(), 1u)
      << "planted patterns should produce frequent pairs";
}

TEST(QuestGeneratorTest, DatasetName) {
  QuestOptions options;
  options.avg_transaction_size = 10;
  options.avg_pattern_size = 4;
  options.num_transactions = 100000;
  EXPECT_EQ(QuestDatasetName(options), "T10.I4.D100K");
}

// --------------------------------------------------------------------------
// RetailGenerator: calibration against the paper's data-set statistics.
// --------------------------------------------------------------------------

class RetailCalibrationTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    RetailOptions options;  // paper-calibrated defaults
    db_ = new TransactionDb(RetailGenerator(options).Generate());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static TransactionDb* db_;
};

TransactionDb* RetailCalibrationTest::db_ = nullptr;

TEST_F(RetailCalibrationTest, TransactionCountMatchesPaper) {
  EXPECT_EQ(db_->size(), 46873u);
  ASSERT_TRUE(ValidateTransactions(*db_).ok());
}

TEST_F(RetailCalibrationTest, SalesTupleCountNearPaper) {
  // |R1| = 115,568 in the paper; calibration within ~4%.
  const uint64_t tuples = CountSalesTuples(*db_);
  EXPECT_GT(tuples, 110000u);
  EXPECT_LT(tuples, 121000u);
}

TEST_F(RetailCalibrationTest, C1At01PercentIs59) {
  AprioriMiner miner;
  MiningOptions options;
  options.min_support = 0.001;
  options.max_pattern_length = 1;
  auto result = miner.Mine(*db_, options);
  ASSERT_TRUE(result.ok());
  // All 59 core items frequent at 0.1%, and no tail item sneaks in.
  EXPECT_EQ(result.value().itemsets.OfSize(1).size(), 59u);
}

TEST_F(RetailCalibrationTest, MaxPatternLengthIsThree) {
  AprioriMiner miner;
  MiningOptions options;
  options.min_support = 0.001;
  auto result = miner.Mine(*db_, options);
  ASSERT_TRUE(result.ok());
  // C3 non-empty, C4 empty — "the maximum size of the rules is 3".
  EXPECT_GE(result.value().itemsets.OfSize(3).size(), 1u);
  EXPECT_EQ(result.value().itemsets.OfSize(4).size(), 0u);
}

TEST_F(RetailCalibrationTest, TriplesSurviveFivePercentSupport) {
  AprioriMiner miner;
  MiningOptions options;
  options.min_support = 0.05;
  auto result = miner.Mine(*db_, options);
  ASSERT_TRUE(result.ok());
  // The planted triples keep C3 non-empty across the whole paper sweep.
  EXPECT_GE(result.value().itemsets.OfSize(3).size(), 1u);
  EXPECT_EQ(result.value().itemsets.OfSize(4).size(), 0u);
}

TEST_F(RetailCalibrationTest, C2BumpsAboveC1AtSmallSupport) {
  AprioriMiner miner;
  MiningOptions small;
  small.min_support = 0.001;
  auto at_small = miner.Mine(*db_, small);
  ASSERT_TRUE(at_small.ok());
  // Figure 6's shape: |C2| > |C1| at 0.1%...
  EXPECT_GT(at_small.value().itemsets.OfSize(2).size(),
            at_small.value().itemsets.OfSize(1).size());
  // ...but far below it at 5%.
  MiningOptions large;
  large.min_support = 0.05;
  auto at_large = miner.Mine(*db_, large);
  ASSERT_TRUE(at_large.ok());
  EXPECT_LT(at_large.value().itemsets.OfSize(2).size(),
            at_large.value().itemsets.OfSize(1).size());
}

TEST_F(RetailCalibrationTest, Deterministic) {
  TransactionDb again = RetailGenerator(RetailOptions{}).Generate();
  ASSERT_EQ(again.size(), db_->size());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(again[i].items, (*db_)[i].items);
  }
}

// --------------------------------------------------------------------------
// Transaction file I/O
// --------------------------------------------------------------------------

TEST(TransactionIoTest, CsvRoundTrip) {
  QuestOptions gen;
  gen.num_transactions = 50;
  gen.seed = 3;
  TransactionDb db = QuestGenerator(gen).Generate();
  const std::string path = testing::TempDir() + "/txns.csv";
  ASSERT_TRUE(SaveTransactionsCsv(path, db).ok());
  auto loaded = LoadTransactionsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].id, db[i].id);
    EXPECT_EQ(loaded.value()[i].items, db[i].items);
  }
  std::remove(path.c_str());
}

TEST(TransactionIoTest, BinaryRoundTrip) {
  QuestOptions gen;
  gen.num_transactions = 80;
  gen.seed = 4;
  TransactionDb db = QuestGenerator(gen).Generate();
  const std::string path = testing::TempDir() + "/txns.bin";
  ASSERT_TRUE(SaveTransactionsBinary(path, db).ok());
  auto loaded = LoadTransactionsBinary(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(loaded.value()[i].id, db[i].id);
    EXPECT_EQ(loaded.value()[i].items, db[i].items);
  }
  std::remove(path.c_str());
}

TEST(TransactionIoTest, CsvGroupsAndDeduplicates) {
  const std::string path = testing::TempDir() + "/manual.csv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("trans_id,item\n2,5\n1,9\n1,3\n2,5\n1,9\n", f);
  fclose(f);
  auto loaded = LoadTransactionsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].id, 1);
  EXPECT_EQ(loaded.value()[0].items, (std::vector<ItemId>{3, 9}));
  EXPECT_EQ(loaded.value()[1].items, (std::vector<ItemId>{5}));
  std::remove(path.c_str());
}

TEST(TransactionIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadTransactionsCsv("/no/such/file.csv").ok());
  EXPECT_FALSE(LoadTransactionsBinary("/no/such/file.bin").ok());
}

TEST(TransactionIoTest, MalformedCsvFails) {
  const std::string path = testing::TempDir() + "/bad.csv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("1,2\nnot-a-row\n", f);
  fclose(f);
  EXPECT_FALSE(LoadTransactionsCsv(path).ok());
  std::remove(path.c_str());
}

TEST(TransactionIoTest, TruncatedBinaryFails) {
  const std::string path = testing::TempDir() + "/trunc.bin";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  uint32_t n = 5;  // promises 5 transactions, delivers none
  fwrite(&n, sizeof(n), 1, f);
  fclose(f);
  auto loaded = LoadTransactionsBinary(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace setm

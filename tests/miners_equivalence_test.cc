// Cross-miner integration tests, driven entirely through the MinerRegistry:
// every registered algorithm (the seven built-ins, plus anything a future
// PR registers) must find exactly the same frequent itemsets as the
// brute-force oracle, across table backings, thread counts, count methods
// and both MiningRequest sources. No miner is constructed by hand here —
// registering an algorithm is what opts it into this suite.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/miner_registry.h"
#include "core/paper_example.h"
#include "core/rules.h"
#include "core/setm.h"
#include "core/setm_sql.h"
#include "datagen/quest_generator.h"
#include "sql/engine.h"

namespace setm {
namespace {

Result<MiningResult> MineVia(const std::string& algo, Database* db,
                             const TransactionDb* txns, const Table* table,
                             const MiningOptions& options,
                             const SetmOptions& knobs = {}) {
  auto miner = MinerRegistry::Create(algo, db, knobs);
  if (!miner.ok()) return miner.status();
  MiningRequest request;
  request.transactions = txns;
  request.table = table;
  request.options = options;
  return miner.value()->Mine(request);
}

/// The physical configurations worth sweeping for one algorithm, derived
/// from its registry metadata — the knob axes it actually honors.
std::vector<SetmOptions> KnobSweep(const MinerInfo& info) {
  std::vector<TableBacking> backings = {TableBacking::kMemory};
  if (info.honors_storage) backings.push_back(TableBacking::kHeap);
  std::vector<size_t> threads = {1};
  if (info.honors_threads) threads.push_back(3);
  std::vector<CountMethod> methods = {CountMethod::kSortMerge};
  if (info.honors_count_method) methods.push_back(CountMethod::kHash);

  std::vector<SetmOptions> sweep;
  for (TableBacking backing : backings) {
    for (size_t t : threads) {
      for (CountMethod method : methods) {
        SetmOptions knobs;
        knobs.storage = backing;
        knobs.num_threads = t;
        knobs.count_method = method;
        sweep.push_back(knobs);
      }
    }
  }
  return sweep;
}

std::string KnobLabel(const SetmOptions& knobs) {
  std::string label = knobs.storage == TableBacking::kHeap ? "heap" : "memory";
  label += knobs.count_method == CountMethod::kHash ? "/hash" : "/sort-merge";
  label += "/threads=" + std::to_string(knobs.num_threads);
  return label;
}

struct Case {
  uint64_t seed;
  double min_support;
  uint32_t num_transactions;
  double avg_size;
  uint32_t num_items;
};

class AllMinersTest : public testing::TestWithParam<Case> {
 protected:
  TransactionDb MakeDb() const {
    QuestOptions gen;
    gen.seed = GetParam().seed;
    gen.num_transactions = GetParam().num_transactions;
    gen.avg_transaction_size = GetParam().avg_size;
    gen.num_items = GetParam().num_items;
    gen.num_patterns = 15;
    return QuestGenerator(gen).Generate();
  }
  MiningOptions Options() const {
    MiningOptions options;
    options.min_support = GetParam().min_support;
    return options;
  }
};

// Every registered algorithm, under every knob combination its metadata
// claims to honor, must reproduce the oracle bit-for-bit.
TEST_P(AllMinersTest, EveryRegisteredMinerMatchesOracle) {
  TransactionDb txns = MakeDb();
  Database oracle_db;
  auto expected =
      MineVia("brute-force", &oracle_db, &txns, nullptr, Options());
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (const MinerInfo& info : MinerRegistry::List()) {
    for (const SetmOptions& knobs : KnobSweep(info)) {
      Database db;
      auto result = MineVia(info.name, &db, &txns, nullptr, Options(), knobs);
      ASSERT_TRUE(result.ok())
          << info.name << " [" << KnobLabel(knobs)
          << "]: " << result.status().ToString();
      EXPECT_TRUE(result.value().itemsets == expected.value().itemsets)
          << info.name << " [" << KnobLabel(knobs)
          << "] diverges from the oracle: "
          << result.value().itemsets.TotalPatterns() << " vs "
          << expected.value().itemsets.TotalPatterns() << " patterns";
      EXPECT_EQ(result.value().itemsets.num_transactions, txns.size())
          << info.name << " [" << KnobLabel(knobs) << "]";
    }
  }
}

// The MiningRequest::table source must be equivalent to the transactions
// source for every algorithm — the baselines' MineTable path included.
TEST_P(AllMinersTest, TableSourceMatchesTransactionsSource) {
  TransactionDb txns = MakeDb();
  for (const MinerInfo& info : MinerRegistry::List()) {
    Database txn_db;
    auto from_txns = MineVia(info.name, &txn_db, &txns, nullptr, Options());
    ASSERT_TRUE(from_txns.ok())
        << info.name << ": " << from_txns.status().ToString();

    Database table_db;
    auto sales = LoadSalesTable(&table_db, "sales_src", txns,
                                TableBacking::kHeap);
    ASSERT_TRUE(sales.ok());
    auto from_table =
        MineVia(info.name, &table_db, nullptr, sales.value(), Options());
    ASSERT_TRUE(from_table.ok())
        << info.name << ": " << from_table.status().ToString();
    EXPECT_TRUE(from_table.value().itemsets == from_txns.value().itemsets)
        << info.name << ": table source diverges from transactions source";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllMinersTest,
    testing::Values(Case{11, 0.05, 150, 4, 15}, Case{12, 0.10, 120, 5, 12},
                    Case{13, 0.02, 300, 3, 25}, Case{14, 0.20, 80, 6, 8},
                    Case{15, 0.04, 200, 5, 18}));

// --------------------------------------------------------------------------
// Parallel partitioned SETM: any thread count, either storage backing and
// either count method must reproduce the serial miner bit-for-bit — same
// itemsets, same rules, same per-iteration relation sizes. (kSortMerge at
// num_threads > 1 is the per-partition sort-based counting path.)
// --------------------------------------------------------------------------

class ParallelSetmTest
    : public testing::TestWithParam<
          std::tuple<uint64_t, TableBacking, size_t, CountMethod>> {};

TEST_P(ParallelSetmTest, IdenticalToSerialMiner) {
  QuestOptions gen;
  gen.seed = std::get<0>(GetParam());
  gen.num_transactions = 250;
  gen.avg_transaction_size = 5;
  gen.num_items = 22;
  gen.num_patterns = 15;
  TransactionDb txns = QuestGenerator(gen).Generate();

  MiningOptions options;
  options.min_support = 0.04;

  SetmOptions serial_opts;
  serial_opts.storage = std::get<1>(GetParam());
  serial_opts.count_method = std::get<3>(GetParam());
  Database serial_db;
  auto expected =
      MineVia("setm", &serial_db, &txns, nullptr, options, serial_opts);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  SetmOptions parallel_opts = serial_opts;
  parallel_opts.num_threads = std::get<2>(GetParam());
  Database parallel_db;
  // Through "setm" (not "setm-parallel") so the num_threads routing knob is
  // covered too.
  auto result =
      MineVia("setm", &parallel_db, &txns, nullptr, options, parallel_opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
  EXPECT_EQ(result.value().itemsets.num_transactions,
            expected.value().itemsets.num_transactions);

  // Per-iteration relation cardinalities are exact sums over partitions.
  ASSERT_EQ(result.value().iterations.size(),
            expected.value().iterations.size());
  for (size_t i = 0; i < expected.value().iterations.size(); ++i) {
    const IterationStats& e = expected.value().iterations[i];
    const IterationStats& r = result.value().iterations[i];
    EXPECT_EQ(r.k, e.k);
    EXPECT_EQ(r.r_prime_rows, e.r_prime_rows) << "k=" << e.k;
    EXPECT_EQ(r.r_rows, e.r_rows) << "k=" << e.k;
    EXPECT_EQ(r.r_bytes, e.r_bytes) << "k=" << e.k;
    EXPECT_EQ(r.c_size, e.c_size) << "k=" << e.k;
  }

  // Identical itemsets must yield identical rules.
  auto expected_rules = GenerateRules(expected.value().itemsets, options,
                                      RuleMode::kSingleConsequent)
                            .value();
  auto rules = GenerateRules(result.value().itemsets, options,
                             RuleMode::kSingleConsequent)
                   .value();
  EXPECT_EQ(rules, expected_rules);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadSweep, ParallelSetmTest,
    testing::Combine(testing::Values(uint64_t{101}, uint64_t{303}),
                     testing::Values(TableBacking::kMemory,
                                     TableBacking::kHeap),
                     testing::Values(size_t{2}, size_t{4}, size_t{8}),
                     testing::Values(CountMethod::kSortMerge,
                                     CountMethod::kHash)));

TEST(ParallelSetmTest, SharedDatabaseWorkerPoolAndOptions) {
  QuestOptions gen;
  gen.seed = 4242;
  gen.num_transactions = 200;
  gen.avg_transaction_size = 6;
  gen.num_items = 18;
  gen.num_patterns = 12;
  TransactionDb txns = QuestGenerator(gen).Generate();

  MiningOptions options;
  options.min_support = 0.05;
  options.filter_r1 = true;       // exercise the pruned-R1 ablation path
  options.max_pattern_length = 3;

  Database serial_db;
  auto expected = MineVia("setm", &serial_db, &txns, nullptr, options);
  ASSERT_TRUE(expected.ok());

  DatabaseOptions db_options;
  db_options.worker_threads = 3;  // miner reuses the database's pool
  Database db(db_options);
  ASSERT_NE(db.worker_pool(), nullptr);
  SetmOptions setm_options;
  setm_options.num_threads = 3;
  auto result =
      MineVia("setm-parallel", &db, &txns, nullptr, options, setm_options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
}

TEST(ParallelSetmTest, MoreThreadsThanTransactions) {
  TransactionDb txns = PaperExampleTransactions();
  Database serial_db;
  auto expected =
      MineVia("setm", &serial_db, &txns, nullptr, PaperExampleOptions());
  ASSERT_TRUE(expected.ok());

  Database db;
  SetmOptions setm_options;
  setm_options.num_threads = 64;  // far more than the example's transactions
  auto result = MineVia("setm-parallel", &db, &txns, nullptr,
                        PaperExampleOptions(), setm_options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
}

TEST(ParallelSetmTest, EmptyDatabase) {
  Database db;
  SetmOptions setm_options;
  setm_options.num_threads = 4;
  TransactionDb empty;
  auto result =
      MineVia("setm-parallel", &db, &empty, nullptr, MiningOptions{},
              setm_options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().itemsets.TotalPatterns(), 0u);
}

// --------------------------------------------------------------------------
// SETM-via-SQL specifics (the direct class API; registry coverage above).
// --------------------------------------------------------------------------

TEST(SetmSqlTest, PaperExampleThroughSql) {
  Database db;
  auto sales = LoadSalesTable(&db, "sales", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  SetmSqlMiner miner(&db);
  auto result = miner.MineTable(*sales.value(), PaperExampleOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().itemsets.OfSize(1).size(), 6u);
  EXPECT_EQ(result.value().itemsets.OfSize(2).size(), 6u);
  EXPECT_EQ(result.value().itemsets.OfSize(3).size(), 1u);
  EXPECT_EQ(result.value().itemsets.CountOf({3, 4, 5}), 3);  // DEF
}

TEST(SetmSqlTest, ExecutedStatementsFollowSection41) {
  Database db;
  auto sales = LoadSalesTable(&db, "sales", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  SetmSqlMiner miner(&db);
  ASSERT_TRUE(miner.MineTable(*sales.value(), PaperExampleOptions()).ok());
  const auto& stmts = miner.executed_statements();
  ASSERT_FALSE(stmts.empty());
  // The three statement shapes of Section 4.1 must all appear.
  auto contains = [&](const std::string& needle) {
    for (const auto& s : stmts) {
      if (s.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("WHERE q.trans_id = p.trans_id AND q.item > p.item1"));
  EXPECT_TRUE(contains("GROUP BY p.item1, p.item2 "
                       "HAVING COUNT(*) >= :minsupport"));
  EXPECT_TRUE(contains("ORDER BY p.trans_id, p.item1, p.item2"));
}

TEST(SetmSqlTest, RerunDropsOnlyItsOwnScratchTables) {
  Database db;
  auto sales = LoadSalesTable(&db, "sales", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  SetmSqlMiner miner(&db);
  ASSERT_TRUE(miner.MineTable(*sales.value(), PaperExampleOptions()).ok());
  // A second run on the same instance must clean up its own scratch tables
  // and succeed.
  auto again = miner.MineTable(*sales.value(), PaperExampleOptions());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().itemsets.OfSize(2).size(), 6u);
}

TEST(SetmSqlTest, ForeignScratchTableIsAlreadyExistsNotClobbered) {
  Database db;
  auto sales = LoadSalesTable(&db, "sales", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  // A user relation that happens to sit in the scratch namespace.
  Schema schema({Column{"x", ValueType::kInt32}});
  auto user = db.catalog()->CreateTable("setm_r1", schema,
                                        TableBacking::kMemory);
  ASSERT_TRUE(user.ok());
  ASSERT_TRUE(user.value()->Insert(Tuple({Value::Int32(7)})).ok());

  SetmSqlMiner miner(&db);
  auto result = miner.MineTable(*sales.value(), PaperExampleOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists)
      << result.status().ToString();
  // The user table survived, contents intact.
  auto still = db.catalog()->GetTable("setm_r1");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still.value()->num_rows(), 1u);
}

TEST(SetmSqlTest, ScratchNamedSourceIsInvalidArgument) {
  Database db;
  auto sales = LoadSalesTable(&db, "setm_r7", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  SetmSqlMiner miner(&db);
  auto result = miner.MineTable(*sales.value(), PaperExampleOptions());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(db.catalog()->HasTable("setm_r7"));  // never dropped
}

TEST(SetmSqlTest, NonCatalogTableFails) {
  Database db;
  MemTable detached("sales", SetmMiner::SalesSchema());
  SetmSqlMiner miner(&db);
  auto result = miner.MineTable(detached, MiningOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------------
// Nested-loop miner specifics (I/O behaviour; correctness covered above).
// --------------------------------------------------------------------------

TEST(NestedLoopTest, PaperExample) {
  Database db;
  TransactionDb txns = PaperExampleTransactions();
  auto result = MineVia("nested-loop", &db, &txns, nullptr,
                        PaperExampleOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.OfSize(2).size(), 6u);
  EXPECT_EQ(result.value().itemsets.OfSize(3).size(), 1u);
}

TEST(NestedLoopTest, SmallPoolForcesRealIo) {
  QuestOptions gen;
  gen.num_transactions = 2000;
  gen.avg_transaction_size = 6;
  gen.num_items = 60;
  gen.seed = 404;
  TransactionDb txns = QuestGenerator(gen).Generate();

  DatabaseOptions small;
  small.pool_frames = 8;  // far smaller than the indexes
  Database db(small);
  MiningOptions options;
  options.min_support = 0.02;
  auto result = MineVia("nested-loop", &db, &txns, nullptr, options);
  ASSERT_TRUE(result.ok());
  // The strategy's probes must show up as (mostly random) page reads.
  EXPECT_GT(result.value().io.page_reads, 1000u);
  EXPECT_GT(result.value().io.random_reads, result.value().io.sequential_reads / 4);
}

}  // namespace
}  // namespace setm

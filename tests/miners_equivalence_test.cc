// Cross-miner integration tests: SETM (direct), SETM-via-SQL, the nested-
// loop strategy, Apriori and AIS must all find exactly the same frequent
// itemsets as the brute-force oracle.

#include <gtest/gtest.h>

#include "baselines/ais.h"
#include "baselines/apriori.h"
#include "baselines/brute_force.h"
#include "core/nested_loop_miner.h"
#include "core/paper_example.h"
#include "core/parallel_setm.h"
#include "core/rules.h"
#include "core/setm.h"
#include "core/setm_sql.h"
#include "datagen/quest_generator.h"

namespace setm {
namespace {

struct Case {
  uint64_t seed;
  double min_support;
  uint32_t num_transactions;
  double avg_size;
  uint32_t num_items;
};

class AllMinersTest : public testing::TestWithParam<Case> {
 protected:
  TransactionDb MakeDb() const {
    QuestOptions gen;
    gen.seed = GetParam().seed;
    gen.num_transactions = GetParam().num_transactions;
    gen.avg_transaction_size = GetParam().avg_size;
    gen.num_items = GetParam().num_items;
    gen.num_patterns = 15;
    return QuestGenerator(gen).Generate();
  }
  MiningOptions Options() const {
    MiningOptions options;
    options.min_support = GetParam().min_support;
    return options;
  }
};

TEST_P(AllMinersTest, SetmSqlMatchesOracle) {
  TransactionDb txns = MakeDb();
  BruteForceMiner oracle;
  auto expected = oracle.Mine(txns, Options());
  ASSERT_TRUE(expected.ok());

  Database db;
  auto sales = LoadSalesTable(&db, "sales", txns, TableBacking::kHeap);
  ASSERT_TRUE(sales.ok());
  SetmSqlMiner miner(&db, "sales");
  auto result = miner.MineTable(Options());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
  EXPECT_EQ(result.value().itemsets.num_transactions, txns.size());
}

TEST_P(AllMinersTest, NestedLoopMatchesOracle) {
  TransactionDb txns = MakeDb();
  BruteForceMiner oracle;
  auto expected = oracle.Mine(txns, Options());
  ASSERT_TRUE(expected.ok());

  Database db;
  NestedLoopMiner miner(&db);
  auto result = miner.Mine(txns, Options());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
}

TEST_P(AllMinersTest, AprioriMatchesOracle) {
  TransactionDb txns = MakeDb();
  BruteForceMiner oracle;
  auto expected = oracle.Mine(txns, Options());
  ASSERT_TRUE(expected.ok());
  AprioriMiner miner;
  auto result = miner.Mine(txns, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
}

TEST_P(AllMinersTest, AisMatchesOracle) {
  TransactionDb txns = MakeDb();
  BruteForceMiner oracle;
  auto expected = oracle.Mine(txns, Options());
  ASSERT_TRUE(expected.ok());
  AisMiner miner;
  auto result = miner.Mine(txns, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllMinersTest,
    testing::Values(Case{11, 0.05, 150, 4, 15}, Case{12, 0.10, 120, 5, 12},
                    Case{13, 0.02, 300, 3, 25}, Case{14, 0.20, 80, 6, 8},
                    Case{15, 0.04, 200, 5, 18}));

// --------------------------------------------------------------------------
// Deterministic-seed smoke test: the direct SETM miner vs. the brute-force
// oracle on fixed Quest seeds, across both TableBacking modes and both
// CountMethods (2 x 2 physical configurations per seed).
// --------------------------------------------------------------------------

class SetmSmokeTest : public testing::TestWithParam<
                          std::tuple<uint64_t, TableBacking, CountMethod>> {};

TEST_P(SetmSmokeTest, MatchesOracleOnFixedSeed) {
  QuestOptions gen;
  gen.seed = std::get<0>(GetParam());
  gen.num_transactions = 180;
  gen.avg_transaction_size = 5;
  gen.num_items = 20;
  gen.num_patterns = 15;
  TransactionDb txns = QuestGenerator(gen).Generate();

  MiningOptions options;
  options.min_support = 0.05;

  BruteForceMiner oracle;
  auto expected = oracle.Mine(txns, options);
  ASSERT_TRUE(expected.ok());

  SetmOptions setm_options;
  setm_options.storage = std::get<1>(GetParam());
  setm_options.count_method = std::get<2>(GetParam());
  Database db;
  SetmMiner miner(&db, setm_options);
  auto result = miner.Mine(txns, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
  EXPECT_EQ(result.value().itemsets.num_transactions, txns.size());
}

INSTANTIATE_TEST_SUITE_P(
    FixedSeeds, SetmSmokeTest,
    testing::Combine(testing::Values(uint64_t{101}, uint64_t{202},
                                     uint64_t{303}),
                     testing::Values(TableBacking::kMemory,
                                     TableBacking::kHeap),
                     testing::Values(CountMethod::kSortMerge,
                                     CountMethod::kHash)));

// --------------------------------------------------------------------------
// Parallel partitioned SETM: any thread count and either storage backing
// must reproduce the serial miner bit-for-bit — same itemsets, same rules,
// same per-iteration relation sizes.
// --------------------------------------------------------------------------

class ParallelSetmTest : public testing::TestWithParam<
                             std::tuple<uint64_t, TableBacking, size_t>> {};

TEST_P(ParallelSetmTest, IdenticalToSerialMiner) {
  QuestOptions gen;
  gen.seed = std::get<0>(GetParam());
  gen.num_transactions = 250;
  gen.avg_transaction_size = 5;
  gen.num_items = 22;
  gen.num_patterns = 15;
  TransactionDb txns = QuestGenerator(gen).Generate();

  MiningOptions options;
  options.min_support = 0.04;

  SetmOptions serial_opts;
  serial_opts.storage = std::get<1>(GetParam());
  Database serial_db;
  SetmMiner serial(&serial_db, serial_opts);
  auto expected = serial.Mine(txns, options);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  SetmOptions parallel_opts = serial_opts;
  parallel_opts.num_threads = std::get<2>(GetParam());
  Database parallel_db;
  // Routed through SetmMiner so the num_threads knob is covered too.
  SetmMiner parallel(&parallel_db, parallel_opts);
  auto result = parallel.Mine(txns, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
  EXPECT_EQ(result.value().itemsets.num_transactions,
            expected.value().itemsets.num_transactions);

  // Per-iteration relation cardinalities are exact sums over partitions.
  ASSERT_EQ(result.value().iterations.size(),
            expected.value().iterations.size());
  for (size_t i = 0; i < expected.value().iterations.size(); ++i) {
    const IterationStats& e = expected.value().iterations[i];
    const IterationStats& r = result.value().iterations[i];
    EXPECT_EQ(r.k, e.k);
    EXPECT_EQ(r.r_prime_rows, e.r_prime_rows) << "k=" << e.k;
    EXPECT_EQ(r.r_rows, e.r_rows) << "k=" << e.k;
    EXPECT_EQ(r.r_bytes, e.r_bytes) << "k=" << e.k;
    EXPECT_EQ(r.c_size, e.c_size) << "k=" << e.k;
  }

  // Identical itemsets must yield identical rules.
  auto expected_rules =
      GenerateRules(expected.value().itemsets, options,
                    RuleMode::kSingleConsequent);
  auto rules = GenerateRules(result.value().itemsets, options,
                             RuleMode::kSingleConsequent);
  EXPECT_EQ(rules, expected_rules);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadSweep, ParallelSetmTest,
    testing::Combine(testing::Values(uint64_t{101}, uint64_t{202},
                                     uint64_t{303}),
                     testing::Values(TableBacking::kMemory,
                                     TableBacking::kHeap),
                     testing::Values(size_t{2}, size_t{4}, size_t{8})));

TEST(ParallelSetmTest, SharedDatabaseWorkerPoolAndOptions) {
  QuestOptions gen;
  gen.seed = 4242;
  gen.num_transactions = 200;
  gen.avg_transaction_size = 6;
  gen.num_items = 18;
  gen.num_patterns = 12;
  TransactionDb txns = QuestGenerator(gen).Generate();

  MiningOptions options;
  options.min_support = 0.05;
  options.filter_r1 = true;       // exercise the pruned-R1 ablation path
  options.max_pattern_length = 3;

  Database serial_db;
  auto expected = SetmMiner(&serial_db).Mine(txns, options);
  ASSERT_TRUE(expected.ok());

  DatabaseOptions db_options;
  db_options.worker_threads = 3;  // miner reuses the database's pool
  Database db(db_options);
  ASSERT_NE(db.worker_pool(), nullptr);
  SetmOptions setm_options;
  setm_options.num_threads = 3;
  ParallelSetmMiner miner(&db, setm_options);
  auto result = miner.Mine(txns, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
}

TEST(ParallelSetmTest, MoreThreadsThanTransactions) {
  TransactionDb txns = PaperExampleTransactions();
  Database serial_db;
  auto expected = SetmMiner(&serial_db).Mine(txns, PaperExampleOptions());
  ASSERT_TRUE(expected.ok());

  Database db;
  SetmOptions setm_options;
  setm_options.num_threads = 64;  // far more than the example's transactions
  ParallelSetmMiner miner(&db, setm_options);
  auto result = miner.Mine(txns, PaperExampleOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().itemsets == expected.value().itemsets);
}

TEST(ParallelSetmTest, EmptyDatabase) {
  Database db;
  SetmOptions setm_options;
  setm_options.num_threads = 4;
  ParallelSetmMiner miner(&db, setm_options);
  auto result = miner.Mine(TransactionDb{}, MiningOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().itemsets.TotalPatterns(), 0u);
}

// --------------------------------------------------------------------------
// SETM-via-SQL specifics.
// --------------------------------------------------------------------------

TEST(SetmSqlTest, PaperExampleThroughSql) {
  Database db;
  auto sales = LoadSalesTable(&db, "sales", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  SetmSqlMiner miner(&db, "sales");
  auto result = miner.MineTable(PaperExampleOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().itemsets.OfSize(1).size(), 6u);
  EXPECT_EQ(result.value().itemsets.OfSize(2).size(), 6u);
  EXPECT_EQ(result.value().itemsets.OfSize(3).size(), 1u);
  EXPECT_EQ(result.value().itemsets.CountOf({3, 4, 5}), 3);  // DEF
}

TEST(SetmSqlTest, ExecutedStatementsFollowSection41) {
  Database db;
  auto sales = LoadSalesTable(&db, "sales", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  SetmSqlMiner miner(&db, "sales");
  ASSERT_TRUE(miner.MineTable(PaperExampleOptions()).ok());
  const auto& stmts = miner.executed_statements();
  ASSERT_FALSE(stmts.empty());
  // The three statement shapes of Section 4.1 must all appear.
  auto contains = [&](const std::string& needle) {
    for (const auto& s : stmts) {
      if (s.find(needle) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains("WHERE q.trans_id = p.trans_id AND q.item > p.item1"));
  EXPECT_TRUE(contains("GROUP BY p.item1, p.item2 "
                       "HAVING COUNT(*) >= :minsupport"));
  EXPECT_TRUE(contains("ORDER BY p.trans_id, p.item1, p.item2"));
}

TEST(SetmSqlTest, RerunAfterDroppedScratchTables) {
  Database db;
  auto sales = LoadSalesTable(&db, "sales", PaperExampleTransactions(),
                              TableBacking::kMemory);
  ASSERT_TRUE(sales.ok());
  SetmSqlMiner miner(&db, "sales");
  ASSERT_TRUE(miner.MineTable(PaperExampleOptions()).ok());
  // A second run must clean up its own scratch tables and succeed.
  auto again = miner.MineTable(PaperExampleOptions());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().itemsets.OfSize(2).size(), 6u);
}

TEST(SetmSqlTest, MissingSalesTableFails) {
  Database db;
  SetmSqlMiner miner(&db, "no_such_table");
  EXPECT_FALSE(miner.MineTable(MiningOptions{}).ok());
}

// --------------------------------------------------------------------------
// Nested-loop miner specifics.
// --------------------------------------------------------------------------

TEST(NestedLoopTest, PaperExample) {
  Database db;
  NestedLoopMiner miner(&db);
  auto result = miner.Mine(PaperExampleTransactions(), PaperExampleOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().itemsets.OfSize(2).size(), 6u);
  EXPECT_EQ(result.value().itemsets.OfSize(3).size(), 1u);
}

TEST(NestedLoopTest, SmallPoolForcesRealIo) {
  QuestOptions gen;
  gen.num_transactions = 2000;
  gen.avg_transaction_size = 6;
  gen.num_items = 60;
  gen.seed = 404;
  TransactionDb txns = QuestGenerator(gen).Generate();

  DatabaseOptions small;
  small.pool_frames = 8;  // far smaller than the indexes
  Database db(small);
  NestedLoopMiner miner(&db);
  MiningOptions options;
  options.min_support = 0.02;
  auto result = miner.Mine(txns, options);
  ASSERT_TRUE(result.ok());
  // The strategy's probes must show up as (mostly random) page reads.
  EXPECT_GT(result.value().io.page_reads, 1000u);
  EXPECT_GT(result.value().io.random_reads, result.value().io.sequential_reads / 4);
}

}  // namespace
}  // namespace setm

// Tests for rule generation (Section 5) and the FrequentItemsets container.

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/paper_example.h"
#include "core/rules.h"
#include "datagen/quest_generator.h"

namespace setm {
namespace {

FrequentItemsets MineExample() {
  BruteForceMiner miner;
  auto result =
      miner.Mine(PaperExampleTransactions(), PaperExampleOptions());
  EXPECT_TRUE(result.ok());
  return std::move(result).value().itemsets;
}

// --------------------------------------------------------------------------
// FrequentItemsets container
// --------------------------------------------------------------------------

TEST(FrequentItemsetsTest, AddAndLookup) {
  FrequentItemsets sets;
  sets.Add({1, 2}, 10);
  sets.Add({3}, 20);
  EXPECT_EQ(sets.CountOf({1, 2}), 10);
  EXPECT_EQ(sets.CountOf({3}), 20);
  EXPECT_EQ(sets.CountOf({9}), 0);
  EXPECT_EQ(sets.MaxSize(), 2u);
  EXPECT_EQ(sets.TotalPatterns(), 2u);
  EXPECT_EQ(sets.OfSize(1).size(), 1u);
  EXPECT_EQ(sets.OfSize(5).size(), 0u);
  EXPECT_EQ(sets.OfSize(0).size(), 0u);
}

TEST(FrequentItemsetsTest, NormalizeSortsAndTrims) {
  FrequentItemsets a, b;
  a.Add({2}, 1);
  a.Add({1}, 1);
  b.Add({1}, 1);
  b.Add({2}, 1);
  a.Normalize();
  b.Normalize();
  EXPECT_TRUE(a == b);
}

TEST(FrequentItemsetsTest, ItemsetKeyDistinguishesSets) {
  EXPECT_NE(ItemsetKey({1, 2}), ItemsetKey({2, 1}));
  EXPECT_NE(ItemsetKey({1}), ItemsetKey({1, 0}));
  EXPECT_EQ(ItemsetKey({5, 7}), ItemsetKey({5, 7}));
}

TEST(ResolveMinSupportTest, FractionRoundsUp) {
  MiningOptions options;
  options.min_support = 0.30;
  EXPECT_EQ(ResolveMinSupportCount(options, 10), 3);
  options.min_support = 0.25;
  EXPECT_EQ(ResolveMinSupportCount(options, 10), 3);  // ceil(2.5)
  options.min_support = 0.0;
  EXPECT_EQ(ResolveMinSupportCount(options, 10), 1);  // floor of 1
  options.min_support = 0.001;
  EXPECT_EQ(ResolveMinSupportCount(options, 46873), 47);
}

TEST(ResolveMinSupportTest, AbsoluteCountWins) {
  MiningOptions options;
  options.min_support = 0.9;
  options.min_support_count = 5;
  EXPECT_EQ(ResolveMinSupportCount(options, 1000), 5);
}

// --------------------------------------------------------------------------
// Rule generation
// --------------------------------------------------------------------------

TEST(RulesTest, EveryRuleMeetsConfidenceAndSupport) {
  FrequentItemsets sets = MineExample();
  MiningOptions options = PaperExampleOptions();
  auto rules = GenerateRules(sets, options).value();
  ASSERT_FALSE(rules.empty());
  for (const auto& r : rules) {
    EXPECT_GE(r.confidence + 1e-12, options.min_confidence);
    EXPECT_GE(r.support + 1e-12, options.min_support);
    // Confidence recomputes from the count relations.
    std::vector<ItemId> full = r.antecedent;
    full.insert(full.end(), r.consequent.begin(), r.consequent.end());
    std::sort(full.begin(), full.end());
    const double expect = static_cast<double>(sets.CountOf(full)) /
                          static_cast<double>(sets.CountOf(r.antecedent));
    EXPECT_NEAR(r.confidence, expect, 1e-12);
  }
}

TEST(RulesTest, ZeroConfidenceKeepsAllSubsetRules) {
  FrequentItemsets sets = MineExample();
  MiningOptions options = PaperExampleOptions();
  options.min_confidence = 0.0;
  auto rules = GenerateRules(sets, options).value();
  // Every frequent k-pattern (k>=2) yields k single-consequent rules:
  // 6 pairs x 2 + 1 triple x 3 = 15.
  EXPECT_EQ(rules.size(), 15u);
}

TEST(RulesTest, AnySubsetModeIncludesLargerConsequents) {
  FrequentItemsets sets = MineExample();
  MiningOptions options = PaperExampleOptions();
  options.min_confidence = 0.0;
  auto rules = GenerateRules(sets, options, RuleMode::kAnySubset).value();
  // Pairs: 2 each (antecedent size 1). Triple: C(3,1)+C(3,2) = 6.
  EXPECT_EQ(rules.size(), 6u * 2 + 6);
  bool found_wide = false;
  for (const auto& r : rules) {
    if (r.antecedent.size() == 1 && r.consequent.size() == 2) {
      found_wide = true;
      break;
    }
  }
  EXPECT_TRUE(found_wide);
}

TEST(RulesTest, RulesAreSortedAndDeterministic) {
  FrequentItemsets sets = MineExample();
  auto a = GenerateRules(sets, PaperExampleOptions()).value();
  auto b = GenerateRules(sets, PaperExampleOptions()).value();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
  for (size_t i = 1; i < a.size(); ++i) {
    const size_t prev = a[i - 1].antecedent.size() + a[i - 1].consequent.size();
    const size_t cur = a[i].antecedent.size() + a[i].consequent.size();
    EXPECT_LE(prev, cur);
  }
}

TEST(RulesTest, EmptyItemsetsYieldNoRules) {
  FrequentItemsets sets;
  sets.num_transactions = 10;
  EXPECT_TRUE(GenerateRules(sets, MiningOptions{}).value().empty());
}

TEST(RulesTest, SingletonsOnlyYieldNoRules) {
  FrequentItemsets sets;
  sets.num_transactions = 10;
  sets.Add({1}, 5);
  sets.Add({2}, 6);
  EXPECT_TRUE(GenerateRules(sets, MiningOptions{}).value().empty());
}

TEST(RulesTest, ConfidenceOneHundredPercentFormatting) {
  AssociationRule rule;
  rule.antecedent = {3, 4};
  rule.consequent = {5};
  rule.confidence = 1.0;
  rule.support = 0.30;
  EXPECT_EQ(FormatRule(rule, PaperItemName), "D E ==> F, [100.0%, 30.0%]");
  // Default formatter prints numeric ids.
  EXPECT_EQ(FormatRule(rule), "3 4 ==> 5, [100.0%, 30.0%]");
}

// Property sweep: on random data, rules from any-subset mode are a superset
// of single-consequent mode, and all metrics check out.
class RulesPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(RulesPropertyTest, ModesAreConsistent) {
  QuestOptions gen;
  gen.seed = GetParam();
  gen.num_transactions = 200;
  gen.avg_transaction_size = 5;
  gen.num_items = 12;
  TransactionDb txns = QuestGenerator(gen).Generate();
  MiningOptions options;
  options.min_support = 0.05;
  options.min_confidence = 0.6;
  BruteForceMiner miner;
  auto result = miner.Mine(txns, options);
  ASSERT_TRUE(result.ok());

  auto narrow = GenerateRules(result.value().itemsets, options).value();
  auto wide =
      GenerateRules(result.value().itemsets, options, RuleMode::kAnySubset)
          .value();
  EXPECT_GE(wide.size(), narrow.size());
  // Every single-consequent rule also appears in any-subset mode.
  for (const auto& r : narrow) {
    bool found = false;
    for (const auto& w : wide) {
      if (w == r) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

// --------------------------------------------------------------------------
// Observer hooks and cooperative cancellation
// --------------------------------------------------------------------------

/// Counts callbacks and optionally vetoes after a fixed number of them.
class VetoingObserver : public MiningObserver {
 public:
  explicit VetoingObserver(int veto_after = -1) : veto_after_(veto_after) {}
  bool OnIteration(const IterationStats& stats) override {
    ++calls;
    max_k_seen = std::max(max_k_seen, stats.k);
    return veto_after_ < 0 || calls < veto_after_;
  }
  int calls = 0;
  size_t max_k_seen = 0;

 private:
  int veto_after_;
};

TEST(RulesObserverTest, ReportsEveryPatternSizeInOrder) {
  FrequentItemsets sets = MineExample();
  MiningOptions options = PaperExampleOptions();
  VetoingObserver observer;
  options.observer = &observer;
  auto rules = GenerateRules(sets, options, RuleMode::kAnySubset);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  // At least one callback per expandable pattern size (sizes 2..MaxSize);
  // mid-level callbacks on large levels may add more, never fewer.
  ASSERT_GE(sets.MaxSize(), 2u);
  EXPECT_GE(observer.calls, static_cast<int>(sets.MaxSize()) - 1);
  EXPECT_EQ(observer.max_k_seen, sets.MaxSize());

  // The observer is progress-only: the rules are identical without it.
  options.observer = nullptr;
  auto plain = GenerateRules(sets, options, RuleMode::kAnySubset);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(rules.value().size(), plain.value().size());
  EXPECT_TRUE(rules.value() == plain.value());
}

TEST(RulesObserverTest, VetoCancelsGeneration) {
  FrequentItemsets sets = MineExample();
  MiningOptions options = PaperExampleOptions();
  VetoingObserver observer(/*veto_after=*/1);
  options.observer = &observer;
  auto rules = GenerateRules(sets, options, RuleMode::kAnySubset);
  ASSERT_FALSE(rules.ok());
  EXPECT_EQ(rules.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(observer.calls, 1);
}

TEST(RulesObserverTest, EmptyInputNeverCallsBack) {
  FrequentItemsets sets;
  MiningOptions options;
  VetoingObserver observer(/*veto_after=*/1);
  options.observer = &observer;
  auto rules = GenerateRules(sets, options);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules.value().empty());
  EXPECT_EQ(observer.calls, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RulesPropertyTest,
                         testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace setm

// The observability subsystem: metrics registry (get-or-create stability,
// exact totals under 8-thread contention, log2-histogram quantiles against
// a sorted oracle), trace spans (tree shape, timing/read attribution,
// idempotent End), the three exporters against golden strings, and the
// layer instrumentation the registry aggregates — buffer-pool hit/miss/
// eviction ledger (including poisoned-victim retries), WAL activity
// counters, and the TracingObserver bridge that turns miner iterations
// into spans.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/mining_planner.h"
#include "core/setm.h"
#include "datagen/quest_generator.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/mining_trace.h"
#include "obs/trace.h"
#include "relational/database.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/io_stats.h"
#include "storage/storage_backend.h"

namespace setm {
namespace {

using obs::HistogramSnapshot;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceSpan;

// --------------------------------------------------------------------------
// Registry: get-or-create semantics and concurrency
// --------------------------------------------------------------------------

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("c", "first registration wins");
  obs::Counter* b = registry.GetCounter("c", "ignored on lookup");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, registry.GetCounter("c2"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));

  a->Increment(5);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("c"), 5u);
  EXPECT_EQ(snap.CounterValue("missing"), 0u);
  EXPECT_EQ(snap.FindHistogram("missing"), nullptr);
  ASSERT_NE(snap.FindHistogram("h"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetGauge("alpha");
  registry.GetHistogram("mid");
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "alpha");
  EXPECT_EQ(snap.metrics[1].name, "mid");
  EXPECT_EQ(snap.metrics[2].name, "zebra");
}

// The hot-path contract: 8 threads hammering one counter, one gauge and
// one histogram — registering by name as they go — lose no increments.
// This is the suite's TSan target for the lock-free metric path.
TEST(MetricsRegistryTest, ConcurrentUpdatesAreExact) {
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  MetricsRegistry registry;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Half the threads re-resolve the names mid-flight: registration
      // (mutexed) must coexist with updates (lock-free).
      obs::Counter* counter = registry.GetCounter("events");
      obs::Gauge* gauge = registry.GetGauge("level");
      obs::Histogram* histogram = registry.GetHistogram("latency");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        if (t % 2 == 0 && i % 4096 == 0) {
          counter = registry.GetCounter("events");
          histogram = registry.GetHistogram("latency");
        }
        counter->Increment();
        gauge->Add(1);
        histogram->Observe(i % 1024);
        gauge->Add(-1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("events"), kThreads * kPerThread);
  const HistogramSnapshot* h = snap.FindHistogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h->count);
  for (const obs::MetricSnapshot& m : snap.metrics) {
    if (m.name == "level") {
      EXPECT_EQ(m.gauge_value, 0);
    }
  }
}

// --------------------------------------------------------------------------
// Histogram: bucket bounds and quantiles vs a sorted oracle
// --------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(HistogramSnapshot::UpperBound(0), 0u);
  EXPECT_EQ(HistogramSnapshot::UpperBound(1), 1u);
  EXPECT_EQ(HistogramSnapshot::UpperBound(2), 2u);
  EXPECT_EQ(HistogramSnapshot::UpperBound(3), 4u);
  EXPECT_EQ(HistogramSnapshot::UpperBound(10), 512u);
  EXPECT_EQ(HistogramSnapshot::UpperBound(obs::Histogram::kNumBuckets - 1),
            UINT64_MAX);
}

/// Nearest-rank quantile over the true values — the oracle the log2
/// estimate is held against.
uint64_t OracleQuantile(std::vector<uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(values.size()) - 1e-9)));
  return values[rank - 1];
}

// The documented accuracy contract: because buckets are log2-spaced and the
// estimate is the containing bucket's inclusive upper bound, the estimate E
// of a true quantile v satisfies v <= E < 2v (E == 0 exactly when v == 0).
TEST(HistogramTest, QuantilesMatchSortedOracleWithinLog2Bound) {
  obs::Histogram histogram;
  std::vector<uint64_t> values;
  // Deterministic LCG spanning zeros through multi-million values, so the
  // oracle exercises many buckets including bucket 0.
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const uint64_t v = (x >> 33) % 3000000;
    values.push_back(i % 50 == 0 ? 0 : v);
    histogram.Observe(values.back());
  }
  const HistogramSnapshot snap = histogram.Snapshot();
  EXPECT_EQ(snap.count, values.size());

  for (double q : {0.0, 0.25, 0.50, 0.90, 0.99, 1.0}) {
    const uint64_t oracle = OracleQuantile(values, q);
    const uint64_t estimate = snap.Quantile(q);
    if (oracle == 0) {
      EXPECT_EQ(estimate, 0u) << "q=" << q;
    } else {
      EXPECT_GE(estimate, oracle) << "q=" << q;
      EXPECT_LT(estimate, 2 * oracle) << "q=" << q;
    }
  }
}

TEST(HistogramTest, EmptyHistogramQuantileIsZero) {
  obs::Histogram histogram;
  EXPECT_EQ(histogram.Snapshot().Quantile(0.5), 0u);
}

// --------------------------------------------------------------------------
// Trace spans
// --------------------------------------------------------------------------

TEST(TraceSpanTest, TreeShapeAndTimingInvariants) {
  IoStats ledger;
  TraceSpan root("request", &ledger);

  TraceSpan* plan = root.StartChild("plan");
  plan->End();

  TraceSpan* mine = root.StartChild("mine");
  ledger.page_reads.fetch_add(7, std::memory_order_relaxed);
  mine->End();
  ledger.page_reads.fetch_add(3, std::memory_order_relaxed);
  root.End();

  ASSERT_EQ(root.children().size(), 2u);
  EXPECT_TRUE(root.ended());
  // A child's wall time can never exceed its parent's.
  EXPECT_LE(plan->seconds(), root.seconds());
  EXPECT_LE(mine->seconds(), root.seconds());
  // Reads attribute to the span whose window they fell in; the root sees
  // everything, children only their own windows.
  EXPECT_EQ(mine->page_reads(), 7u);
  EXPECT_EQ(plan->page_reads(), 0u);
  EXPECT_EQ(root.page_reads(), 10u);
}

TEST(TraceSpanTest, EndIsIdempotentAndEndsOpenChildren) {
  TraceSpan root("request");
  TraceSpan* open_child = root.StartChild("left-open");
  root.End();
  EXPECT_TRUE(open_child->ended());
  const double frozen = root.seconds();
  root.End();  // second End must not re-freeze anything
  EXPECT_EQ(root.seconds(), frozen);
}

TEST(TraceSpanTest, AddCompletedChildWorksEvenAfterEnd) {
  TraceSpan root("request");
  root.End();
  TraceSpan* rules = root.AddCompletedChild("rules", 0.5, 42);
  ASSERT_EQ(root.children().size(), 1u);
  EXPECT_TRUE(rules->ended());
  EXPECT_DOUBLE_EQ(rules->seconds(), 0.5);
  EXPECT_EQ(rules->page_reads(), 42u);
}

TEST(TraceSpanTest, RenderShowsTagsCountsAndIndentedChildren) {
  TraceSpan root("request");
  root.AddTag("strategy", "full-mine");
  TraceSpan* child = root.StartChild("mine");
  child->AddCount("k", 3);
  root.End();
  const std::string rendered = root.Render(2);
  EXPECT_NE(rendered.find("  request "), std::string::npos);
  EXPECT_NE(rendered.find("strategy=full-mine"), std::string::npos);
  EXPECT_NE(rendered.find("\n    mine "), std::string::npos);
  EXPECT_NE(rendered.find("k=3"), std::string::npos);
  EXPECT_NE(rendered.find("reads="), std::string::npos);
}

// --------------------------------------------------------------------------
// Exporters: golden strings over a local registry
// --------------------------------------------------------------------------

/// A tiny registry with one metric of each kind and known values; every
/// exporter golden below is derived from this fixture by hand.
MetricsSnapshot GoldenSnapshot() {
  static MetricsRegistry registry;
  static bool populated = false;
  if (!populated) {
    populated = true;
    registry.GetCounter("t_counter", "ticks")->Increment(3);
    registry.GetGauge("t_gauge")->Set(-2);
    obs::Histogram* h = registry.GetHistogram("t_hist");
    for (uint64_t v : {0u, 1u, 3u, 8u}) h->Observe(v);
  }
  return registry.Snapshot();
}

TEST(ExportTest, TextGolden) {
  const std::string expected =
      "t_counter                                    3\n"
      "t_gauge                                      -2\n"
      "t_hist                                       "
      "count=4 sum=12 p50=1 p90=8 p99=8\n";
  EXPECT_EQ(obs::RenderText(GoldenSnapshot()), expected);
}

TEST(ExportTest, JsonGolden) {
  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"t_counter\",\"type\":\"counter\",\"value\":3},"
      "{\"name\":\"t_gauge\",\"type\":\"gauge\",\"value\":-2},"
      "{\"name\":\"t_hist\",\"type\":\"histogram\",\"count\":4,\"sum\":12,"
      "\"p50\":1,\"p90\":8,\"p99\":8}"
      "]}\n";
  EXPECT_EQ(obs::RenderJson(GoldenSnapshot()), expected);
}

TEST(ExportTest, PrometheusGolden) {
  const std::string expected =
      "# HELP t_counter ticks\n"
      "# TYPE t_counter counter\n"
      "t_counter 3\n"
      "# TYPE t_gauge gauge\n"
      "t_gauge -2\n"
      "# TYPE t_hist histogram\n"
      "t_hist_bucket{le=\"0\"} 1\n"
      "t_hist_bucket{le=\"1\"} 2\n"
      "t_hist_bucket{le=\"2\"} 2\n"
      "t_hist_bucket{le=\"4\"} 3\n"
      "t_hist_bucket{le=\"8\"} 4\n"
      "t_hist_bucket{le=\"+Inf\"} 4\n"
      "t_hist_sum 12\n"
      "t_hist_count 4\n";
  EXPECT_EQ(obs::RenderPrometheus(GoldenSnapshot()), expected);
}

// --------------------------------------------------------------------------
// Buffer-pool instrumentation
// --------------------------------------------------------------------------

TEST(PoolStatsTest, HitsMissesEvictionsAndWritebacks) {
  MemoryBackend backend(nullptr);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(backend.AllocatePage().ok());
  BufferPool pool(&backend, 2);

  ASSERT_TRUE(pool.FetchPage(0).ok());  // miss
  ASSERT_TRUE(pool.FetchPage(0).ok());  // hit
  {
    auto guard = pool.FetchPage(1);  // miss
    ASSERT_TRUE(guard.ok());
    guard.value().MarkDirty();
  }
  // Pool is full; page 2 evicts the LRU (page 0, clean — no write-back).
  ASSERT_TRUE(pool.FetchPage(2).ok());  // miss + eviction

  BufferPool::PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.dirty_writebacks, 0u);
  EXPECT_EQ(stats.eviction_retries, 0u);

  // Flushing the dirty page 1 is a write-back without an eviction.
  ASSERT_TRUE(pool.FlushAll().ok());
  stats = pool.Stats();
  EXPECT_EQ(stats.dirty_writebacks, 1u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(PoolStatsTest, PoisonedVictimSkipCountsAsEvictionRetry) {
  constexpr size_t kFrames = 3;
  IoStats io;
  MemoryBackend real(&io);
  for (size_t i = 0; i < kFrames + 1; ++i) {
    ASSERT_TRUE(real.AllocatePage().ok());
  }
  FaultInjectionBackend flaky(&real, ~0ull);
  BufferPool pool(&flaky, kFrames);
  for (size_t i = 0; i < kFrames; ++i) {
    auto guard = pool.FetchPage(static_cast<PageId>(i));
    ASSERT_TRUE(guard.ok());
    guard.value().MarkDirty();
  }
  flaky.PoisonWrites(0);

  // Eviction must route around the poisoned LRU victim: one retry, then a
  // successful dirty write-back of the next candidate.
  ASSERT_TRUE(pool.FetchPage(static_cast<PageId>(kFrames)).ok());
  const BufferPool::PoolStats stats = pool.Stats();
  EXPECT_EQ(stats.eviction_retries, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.dirty_writebacks, 1u);
  flaky.Heal();
  flaky.PoisonWrites(kInvalidPageId);
}

// --------------------------------------------------------------------------
// WAL instrumentation
// --------------------------------------------------------------------------

TEST(WalStatsTest, InMemoryDatabaseReportsZeros) {
  Database db;
  const WalStats stats = db.wal_stats();
  EXPECT_EQ(stats.page_records, 0u);
  EXPECT_EQ(stats.commit_records, 0u);
  EXPECT_EQ(stats.bytes_appended, 0u);
  EXPECT_EQ(stats.fsyncs, 0u);
}

TEST(WalStatsTest, CommitsAndPageImagesAreCounted) {
  const std::string path = testing::TempDir() + "/obs_wal_stats.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  DatabaseOptions options;
  options.file_path = path;
  auto db_or = Database::Open(options);
  ASSERT_TRUE(db_or.ok()) << db_or.status().ToString();
  Database* db = db_or.value().get();

  Schema schema({Column{"a", ValueType::kInt32}});
  auto table = db->catalog()->CreateTable("t", schema, TableBacking::kHeap);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(table.value()->Insert(Tuple({Value::Int32(i)})).ok());
  }
  ASSERT_TRUE(db->Commit().ok());

  const WalStats stats = db->wal_stats();
  EXPECT_GE(stats.page_records, 1u);   // the inserted heap pages
  EXPECT_GE(stats.commit_records, 1u); // our Commit()
  EXPECT_GE(stats.fsyncs, 1u);         // default window 0: every commit syncs
  EXPECT_GT(stats.bytes_appended, 0u);

  ASSERT_TRUE(db->Close().ok());
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

// --------------------------------------------------------------------------
// TracingObserver: the observer seam as a span source
// --------------------------------------------------------------------------

TransactionDb SmallQuestDb() {
  QuestOptions gen;
  gen.seed = 17;
  gen.num_transactions = 120;
  gen.avg_transaction_size = 5;
  gen.num_items = 20;
  gen.num_patterns = 10;
  return QuestGenerator(gen).Generate();
}

TEST(TracingObserverTest, OneSpanPerIterationWithCardinalities) {
  TransactionDb txns = SmallQuestDb();
  Database db;
  TraceSpan mine_span("mine", db.io_stats());
  obs::TracingObserver tracing(&mine_span, db.io_stats());

  MiningOptions options;
  options.min_support_count = 3;
  options.observer = &tracing;
  auto result = SetmMiner(&db).Mine(txns, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  mine_span.End();

  ASSERT_FALSE(result.value().iterations.empty());
  ASSERT_EQ(mine_span.children().size(), result.value().iterations.size());
  for (size_t i = 0; i < mine_span.children().size(); ++i) {
    const TraceSpan& span = *mine_span.children()[i];
    EXPECT_EQ(span.name(), "iteration");
    // First count is k, matching the reported IterationStats in order.
    ASSERT_FALSE(span.counts().empty());
    EXPECT_EQ(span.counts()[0].first, "k");
    EXPECT_EQ(span.counts()[0].second, result.value().iterations[i].k);
  }
}

/// Cancels after the first iteration — the chained-inner-observer verdict.
class CancelAfterOne : public MiningObserver {
 public:
  bool OnIteration(const IterationStats&) override { return ++calls_ < 1; }

 private:
  int calls_ = 0;
};

TEST(TracingObserverTest, ChainsInnerObserverVerdict) {
  TransactionDb txns = SmallQuestDb();
  Database db;
  TraceSpan mine_span("mine", db.io_stats());
  CancelAfterOne inner;
  obs::TracingObserver tracing(&mine_span, db.io_stats(), &inner);

  MiningOptions options;
  options.min_support_count = 3;
  options.observer = &tracing;
  auto result = SetmMiner(&db).Mine(txns, options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  mine_span.End();
  // The iteration that ran before cancellation was still traced.
  EXPECT_EQ(mine_span.children().size(), 1u);
}

// --------------------------------------------------------------------------
// Planner trace integration: the acceptance shape of ISSUE 8
// --------------------------------------------------------------------------

size_t CountSpansNamed(const TraceSpan& span, const std::string& name) {
  size_t n = span.name() == name ? 1 : 0;
  for (const auto& child : span.children()) {
    n += CountSpansNamed(*child, name);
  }
  return n;
}

bool HasTag(const TraceSpan& span, const std::string& key,
            const std::string& value) {
  for (const auto& [k, v] : span.tags()) {
    if (k == key && v == value) return true;
  }
  return false;
}

TEST(PlannerTraceTest, FullMineThenCacheFilterSpanShapes) {
  TransactionDb txns = SmallQuestDb();
  Database db;
  auto sales_or = LoadSalesTable(&db, "sales", txns, TableBacking::kHeap);
  ASSERT_TRUE(sales_or.ok()) << sales_or.status().ToString();

  PlannerOptions planner_options;
  planner_options.store_prefix = "fi";
  MiningPlanner planner(&db, planner_options);

  PlanRequest request;
  request.table = sales_or.value();
  request.options.min_support_count = 3;

  // Cold query: root -> plan + mine, with one iteration span per reported
  // iteration hanging under "mine".
  TraceSpan cold_root("request", db.io_stats());
  request.trace = &cold_root;
  auto cold = planner.Execute(request);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  cold_root.End();
  EXPECT_TRUE(HasTag(cold_root, "strategy", "full-mine"));
  EXPECT_EQ(CountSpansNamed(cold_root, "plan"), 1u);
  EXPECT_EQ(CountSpansNamed(cold_root, "mine"), 1u);
  EXPECT_EQ(CountSpansNamed(cold_root, "iteration"),
            cold.value().result.iterations.size());

  // Dominated re-query: cache-filter, root -> plan + load, and — the
  // zero-mining guarantee, visible structurally — no iteration spans.
  TraceSpan requery_root("request", db.io_stats());
  request.options.min_support_count = 6;
  request.trace = &requery_root;
  auto requery = planner.Execute(request);
  ASSERT_TRUE(requery.ok()) << requery.status().ToString();
  requery_root.End();
  ASSERT_EQ(requery.value().plan.strategy, PlanStrategy::kCacheFilter);
  EXPECT_TRUE(HasTag(requery_root, "strategy", "cache-filter"));
  EXPECT_EQ(CountSpansNamed(requery_root, "plan"), 1u);
  EXPECT_EQ(CountSpansNamed(requery_root, "load"), 1u);
  EXPECT_EQ(CountSpansNamed(requery_root, "iteration"), 0u);
}

}  // namespace
}  // namespace setm

# Warning profile shared by every target in the repo. Exposed as the list
# SETM_WARNING_FLAGS and applied with PRIVATE visibility per target so the
# flags never leak into GoogleTest or other fetched dependencies.
#
# Controlled by:
#   SETM_WERROR (default ON) — promote the profile to errors.

set(SETM_WARNING_FLAGS "")
if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  list(APPEND SETM_WARNING_FLAGS
    -Wall
    -Wextra
    -Wpedantic
    -Wshadow
    -Wnon-virtual-dtor)
  if(SETM_WERROR)
    list(APPEND SETM_WARNING_FLAGS -Werror)
  endif()
elseif(MSVC)
  list(APPEND SETM_WARNING_FLAGS /W4)
  if(SETM_WERROR)
    list(APPEND SETM_WARNING_FLAGS /WX)
  endif()
endif()

// setm_served — the resident mining daemon.
//
//   setm_served --db FILE [--host ADDR] [--port N] [--port-file FILE]
//               [--max-conns N] [--max-line-bytes N] [--idle-timeout-ms N]
//               [--request-timeout-ms N] [--job-threads N] [--threads N]
//               [--store PREFIX] [--fallback PCT] [--pool-frames N]
//               [--trace]
//
// Opens the database once and serves concurrent clients over the line
// protocol (see src/net/protocol.h): MINE / APPEND / RULES / EXPLAIN are
// dispatched as cancellable jobs through the MiningPlanner, PING / STATS /
// QUIT are answered inline. The buffer pool stays warm and stored runs
// stay fresh across clients, so the second client asking yesterday's
// question gets a cache-filter answer with zero mining iterations —
// exactly the amortization a one-shot CLI cannot offer.
//
// --port 0 (the default) binds an ephemeral port; the bound port is
// printed on stdout as "listening on HOST:PORT" and, with --port-file,
// written there as a bare number — scripts poll that file instead of
// racing the bind. Without --db the daemon serves an in-memory database
// (useful for tests; APPEND-created state dies with the process).
//
// SIGINT/SIGTERM trigger a graceful shutdown: stop accepting, cancel
// in-flight jobs through the observer seam (they stop within one
// iteration), flush what can be flushed, checkpoint and close the
// database. A second signal during the grace period is not needed — the
// grace deadline (--grace-ms) bounds the wait unconditionally.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "net/server.h"
#include "relational/database.h"

namespace {

using namespace setm;

volatile std::sig_atomic_t g_shutdown = 0;
setm::net::MiningServer* g_server = nullptr;

void HandleSignal(int) {
  g_shutdown = 1;
  // Async-signal-safe: RequestShutdown is an atomic store plus one write(2)
  // to the loop's self-pipe.
  if (g_server != nullptr) g_server->RequestShutdown();
}

struct Args {
  std::string db;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string port_file;
  size_t max_conns = 64;
  size_t max_line_bytes = 8192;
  uint64_t idle_timeout_ms = 300000;
  uint64_t request_timeout_ms = 0;
  uint64_t grace_ms = 5000;
  size_t job_threads = 4;
  size_t threads = 1;  // default THREADS for MINE
  std::string store_prefix = "fi";
  double fallback_pct = 25.0;
  size_t pool_frames = 0;
  bool trace = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--db FILE] [--host ADDR] [--port N] [--port-file FILE]\n"
      "          [--max-conns N] [--max-line-bytes N] [--idle-timeout-ms N]\n"
      "          [--request-timeout-ms N] [--grace-ms N] [--job-threads N]\n"
      "          [--threads N] [--store PREFIX] [--fallback PCT]\n"
      "          [--pool-frames N] [--trace]\n"
      "(--port 0 binds an ephemeral port, printed on stdout and written to\n"
      " --port-file; --store '' disables the shared result cache; --trace\n"
      " renders one span tree per request to stderr)\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    auto parse_count = [&](const char* flag, size_t min_v, size_t* dst) {
      const char* v = need_value(flag);
      if (v == nullptr) return false;
      long n = std::atol(v);
      if (n < static_cast<long>(min_v)) {
        std::fprintf(stderr, "%s must be >= %zu\n", flag, min_v);
        return false;
      }
      *dst = static_cast<size_t>(n);
      return true;
    };
    if (std::strcmp(argv[i], "--db") == 0) {
      const char* v = need_value("--db");
      if (v == nullptr) return false;
      out->db = v;
    } else if (std::strcmp(argv[i], "--host") == 0) {
      const char* v = need_value("--host");
      if (v == nullptr) return false;
      out->host = v;
    } else if (std::strcmp(argv[i], "--port") == 0) {
      const char* v = need_value("--port");
      if (v == nullptr) return false;
      long n = std::atol(v);
      if (n < 0 || n > 65535) {
        std::fprintf(stderr, "--port must be in [0,65535]\n");
        return false;
      }
      out->port = static_cast<uint16_t>(n);
    } else if (std::strcmp(argv[i], "--port-file") == 0) {
      const char* v = need_value("--port-file");
      if (v == nullptr) return false;
      out->port_file = v;
    } else if (std::strcmp(argv[i], "--max-conns") == 0) {
      if (!parse_count("--max-conns", 1, &out->max_conns)) return false;
    } else if (std::strcmp(argv[i], "--max-line-bytes") == 0) {
      if (!parse_count("--max-line-bytes", 64, &out->max_line_bytes)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--idle-timeout-ms") == 0) {
      const char* v = need_value("--idle-timeout-ms");
      if (v == nullptr) return false;
      out->idle_timeout_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--request-timeout-ms") == 0) {
      const char* v = need_value("--request-timeout-ms");
      if (v == nullptr) return false;
      out->request_timeout_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--grace-ms") == 0) {
      const char* v = need_value("--grace-ms");
      if (v == nullptr) return false;
      out->grace_ms = static_cast<uint64_t>(std::atoll(v));
    } else if (std::strcmp(argv[i], "--job-threads") == 0) {
      if (!parse_count("--job-threads", 1, &out->job_threads)) return false;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (!parse_count("--threads", 1, &out->threads)) return false;
    } else if (std::strcmp(argv[i], "--store") == 0) {
      const char* v = need_value("--store");
      if (v == nullptr) return false;
      out->store_prefix = v;
    } else if (std::strcmp(argv[i], "--fallback") == 0) {
      const char* v = need_value("--fallback");
      if (v == nullptr) return false;
      out->fallback_pct = std::atof(v);
    } else if (std::strcmp(argv[i], "--pool-frames") == 0) {
      if (!parse_count("--pool-frames", 1, &out->pool_frames)) return false;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      out->trace = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  DatabaseOptions db_options;
  db_options.file_path = args.db;
  if (args.pool_frames > 0) db_options.pool_frames = args.pool_frames;
  auto db_or = Database::Open(db_options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "cannot open database %s: %s\n",
                 args.db.empty() ? "(in-memory)" : args.db.c_str(),
                 db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(db_or).value();

  net::ServerOptions options;
  options.host = args.host;
  options.port = args.port;
  options.max_connections = args.max_conns;
  options.max_line_bytes = args.max_line_bytes;
  options.idle_timeout_ms = args.idle_timeout_ms;
  options.request_timeout_ms = args.request_timeout_ms;
  options.shutdown_grace_ms = args.grace_ms;
  options.job_threads = args.job_threads;
  options.default_mine_threads = args.threads;
  options.store_prefix = args.store_prefix;
  options.full_remine_fraction = args.fallback_pct / 100.0;
  options.trace = args.trace;
  options.shutdown_flag = &g_shutdown;

  auto server_or = net::MiningServer::Create(db.get(), options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::MiningServer> server = std::move(server_or).value();

  g_server = server.get();
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  // A dying client mid-write must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);

  std::printf("listening on %s:%u\n", args.host.c_str(), server->port());
  std::fflush(stdout);
  if (!args.port_file.empty()) {
    std::FILE* f = std::fopen(args.port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write --port-file %s\n",
                   args.port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", server->port());
    std::fclose(f);
  }

  Status run = server->Run();
  const net::ServerStats stats = server->Stats();
  g_server = nullptr;
  server.reset();  // joins in-flight jobs before the database closes

  std::fprintf(stderr,
               "served %llu requests on %llu connections "
               "(%llu cancelled, %llu disconnects)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.cancelled_jobs),
               static_cast<unsigned long long>(stats.disconnects));

  Status closed = db->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "database close failed: %s\n",
                 closed.ToString().c_str());
    return 1;
  }
  if (!run.ok()) {
    std::fprintf(stderr, "server loop failed: %s\n", run.ToString().c_str());
    return 1;
  }
  return 0;
}

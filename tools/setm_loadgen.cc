// setm_loadgen — scripted client for the setm_served line protocol.
//
//   setm_loadgen --connect HOST:PORT [--script FILE] [--payload-only]
//                [--fail-on-err] [--timeout-ms N]
//
// Reads a script (default: stdin), one directive per line:
//
//   MINE sales SUPPORT 2%      any protocol line: sent as a command, one
//                              response read and printed
//   !send APPEND sales SUPPORT 2%
//   !send 101 1 2 3            "!send" transmits the line without reading
//   .                          a response — how APPEND rows are streamed;
//                              the bare "." is a normal command line whose
//                              response is the refreshed mining answer
//   !sleep 250                 pause (milliseconds)
//   !abort                     close the socket immediately and exit — the
//                              "client killed mid-MINE" test: the server
//                              must cancel the orphaned job within one
//                              iteration and free the connection slot
//   # ...                      comment; blank lines are skipped
//
// Responses are printed as "OK <info>" / "ERR <Code> <message>" followed by
// the payload; --payload-only drops the status lines so the output can be
// diffed byte-for-byte against `setm_mine --format csv`. --fail-on-err
// exits 3 on the first ERR response (transport failures always exit 1).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "net/client.h"

namespace {

using namespace setm;

struct Args {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string script;  // empty = stdin
  bool payload_only = false;
  bool fail_on_err = false;
  int timeout_ms = 30000;
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect HOST:PORT [--script FILE]\n"
               "          [--payload-only] [--fail-on-err] [--timeout-ms N]\n"
               "(script directives: protocol lines, !send <line>, "
               "!sleep <ms>, !abort, # comment)\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Args* out) {
  bool have_connect = false;
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--connect") == 0) {
      const char* v = need_value("--connect");
      if (v == nullptr) return false;
      const char* colon = std::strrchr(v, ':');
      if (colon == nullptr || colon == v) {
        std::fprintf(stderr, "--connect expects HOST:PORT\n");
        return false;
      }
      out->host.assign(v, colon - v);
      long port = std::atol(colon + 1);
      if (port < 1 || port > 65535) {
        std::fprintf(stderr, "--connect port must be in [1,65535]\n");
        return false;
      }
      out->port = static_cast<uint16_t>(port);
      have_connect = true;
    } else if (std::strcmp(argv[i], "--script") == 0) {
      const char* v = need_value("--script");
      if (v == nullptr) return false;
      out->script = v;
    } else if (std::strcmp(argv[i], "--payload-only") == 0) {
      out->payload_only = true;
    } else if (std::strcmp(argv[i], "--fail-on-err") == 0) {
      out->fail_on_err = true;
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0) {
      const char* v = need_value("--timeout-ms");
      if (v == nullptr) return false;
      out->timeout_ms = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  if (!have_connect) {
    std::fprintf(stderr, "--connect is required\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  std::FILE* script = stdin;
  if (!args.script.empty() && args.script != "-") {
    script = std::fopen(args.script.c_str(), "r");
    if (script == nullptr) {
      std::fprintf(stderr, "cannot open script %s\n", args.script.c_str());
      return 2;
    }
  }

  auto client_or =
      net::BlockingClient::Connect(args.host, args.port, args.timeout_ms);
  if (!client_or.ok()) {
    std::fprintf(stderr, "%s\n", client_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<net::BlockingClient> client = std::move(client_or).value();

  char buf[16384];
  int exit_code = 0;
  while (std::fgets(buf, sizeof(buf), script) != nullptr) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;

    if (line.rfind("!send ", 0) == 0) {
      Status sent = client->SendLine(line.substr(6));
      if (!sent.ok()) {
        std::fprintf(stderr, "%s\n", sent.ToString().c_str());
        return 1;
      }
      continue;
    }
    if (line.rfind("!sleep ", 0) == 0) {
      const long ms = std::atol(line.c_str() + 7);
      if (ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
      continue;
    }
    if (line == "!abort") {
      // Hard close without QUIT: exactly what a killed client looks like
      // to the server.
      ::close(client->fd());
      std::_Exit(exit_code);
    }
    if (!line.empty() && line[0] == '!') {
      std::fprintf(stderr, "unknown directive: %s\n", line.c_str());
      return 2;
    }

    auto response_or = client->Exec(line);
    if (!response_or.ok()) {
      std::fprintf(stderr, "%s\n", response_or.status().ToString().c_str());
      return 1;
    }
    const net::ClientResponse& response = response_or.value();
    if (!args.payload_only) {
      if (response.ok) {
        std::printf("OK %s\n", response.info.c_str());
      } else {
        std::printf("ERR %s %s\n", response.code.c_str(),
                    response.info.c_str());
      }
    }
    if (response.ok && !response.payload.empty()) {
      std::fwrite(response.payload.data(), 1, response.payload.size(),
                  stdout);
    }
    std::fflush(stdout);
    if (!response.ok && args.fail_on_err) {
      std::fprintf(stderr, "aborting on ERR (--fail-on-err)\n");
      exit_code = 3;
      break;
    }
  }
  if (script != stdin) std::fclose(script);
  return exit_code;
}

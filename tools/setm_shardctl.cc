// setm_shardctl — operator CLI for multi-shard databases.
//
//   setm_shardctl split --input FILE.csv --shards N --out DIR
//                 [--table NAME] [--manifest FILE]
//   setm_shardctl mine  --manifest FILE [--minsup PCT] [--minconf PCT]
//                 [--method sortmerge|hash] [--rules single|subsets]
//                 [--max-k N] [--format text|csv] [--stats]
//   setm_shardctl stats --manifest FILE
//
// `split` partitions a (trans_id,item) CSV into N ordinary database files —
// each a normal format-v3 file with its own WAL, openable by setm_mine or
// served by setm_served — balanced by row count but never splitting a
// transaction across shards, and writes the shard manifest
// (persist/shard_manifest.h) recording members, tid ranges and the epoch.
//
// `mine` opens every member listed in the manifest (local files in-process,
// remote members over LCOUNT/MERGE) and runs the two-phase distributed
// count. The answer is bit-identical to single-node SETM over the union of
// the shards; with --format csv the rules are byte-identical to
// `setm_mine --format csv` on the unsplit CSV.
//
// `stats` probes every member (remote members answer a PING) and prints one
// health line per shard.

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/rules.h"
#include "core/setm.h"
#include "datagen/transaction_io.h"
#include "net/protocol.h"
#include "persist/shard_manifest.h"
#include "shard/sharded_db.h"

namespace {

using namespace setm;

volatile std::sig_atomic_t g_interrupted = 0;

void HandleInterrupt(int) { g_interrupted = 1; }

class InterruptObserver : public MiningObserver {
 public:
  bool OnIteration(const IterationStats&) override {
    return g_interrupted == 0;
  }
};

struct Args {
  std::string command;
  std::string input;
  std::string out_dir;
  std::string manifest;
  std::string table = "sales";
  std::string method = "sortmerge";
  std::string rules = "single";
  std::string format = "text";
  size_t shards = 0;
  size_t max_k = 0;
  double minsup_pct = 1.0;
  double minconf_pct = 50.0;
  bool stats = false;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s split --input FILE.csv --shards N --out DIR\n"
      "               [--table NAME] [--manifest FILE]\n"
      "       %s mine  --manifest FILE [--minsup PCT] [--minconf PCT]\n"
      "               [--method sortmerge|hash] [--rules single|subsets]\n"
      "               [--max-k N] [--format text|csv] [--stats]\n"
      "       %s stats --manifest FILE\n",
      argv0, argv0, argv0);
}

bool ParseArgs(int argc, char** argv, Args* out) {
  if (argc < 2) return false;
  out->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (std::strcmp(argv[i], "--input") == 0) {
      if ((v = need_value("--input")) == nullptr) return false;
      out->input = v;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if ((v = need_value("--shards")) == nullptr) return false;
      long n = std::atol(v);
      if (n < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return false;
      }
      out->shards = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if ((v = need_value("--out")) == nullptr) return false;
      out->out_dir = v;
    } else if (std::strcmp(argv[i], "--manifest") == 0) {
      if ((v = need_value("--manifest")) == nullptr) return false;
      out->manifest = v;
    } else if (std::strcmp(argv[i], "--table") == 0) {
      if ((v = need_value("--table")) == nullptr) return false;
      out->table = v;
    } else if (std::strcmp(argv[i], "--method") == 0) {
      if ((v = need_value("--method")) == nullptr) return false;
      out->method = v;
      if (out->method != "sortmerge" && out->method != "hash") {
        std::fprintf(stderr, "--method must be sortmerge or hash\n");
        return false;
      }
    } else if (std::strcmp(argv[i], "--rules") == 0) {
      if ((v = need_value("--rules")) == nullptr) return false;
      out->rules = v;
    } else if (std::strcmp(argv[i], "--format") == 0) {
      if ((v = need_value("--format")) == nullptr) return false;
      out->format = v;
    } else if (std::strcmp(argv[i], "--max-k") == 0) {
      if ((v = need_value("--max-k")) == nullptr) return false;
      out->max_k = static_cast<size_t>(std::atol(v));
    } else if (std::strcmp(argv[i], "--minsup") == 0) {
      if ((v = need_value("--minsup")) == nullptr) return false;
      out->minsup_pct = std::atof(v);
    } else if (std::strcmp(argv[i], "--minconf") == 0) {
      if ((v = need_value("--minconf")) == nullptr) return false;
      out->minconf_pct = std::atof(v);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      out->stats = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  if (out->command == "split") {
    if (out->input.empty() || out->shards == 0 || out->out_dir.empty()) {
      std::fprintf(stderr, "split requires --input, --shards and --out\n");
      return false;
    }
    if (out->manifest.empty()) {
      out->manifest = out->out_dir + "/shards.manifest";
    }
    return true;
  }
  if (out->command == "mine" || out->command == "stats") {
    if (out->manifest.empty()) {
      std::fprintf(stderr, "%s requires --manifest\n", out->command.c_str());
      return false;
    }
    return true;
  }
  std::fprintf(stderr, "unknown command '%s'\n", out->command.c_str());
  return false;
}

int RunSplit(const Args& args) {
  auto txns_or = LoadTransactionsCsv(args.input);
  if (!txns_or.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", args.input.c_str(),
                 txns_or.status().ToString().c_str());
    return 1;
  }
  const TransactionDb& txns = txns_or.value();
  if (txns.empty()) {
    std::fprintf(stderr, "%s holds no transactions\n", args.input.c_str());
    return 1;
  }
  ::mkdir(args.out_dir.c_str(), 0775);

  size_t total_rows = 0;
  for (const Transaction& txn : txns) total_rows += txn.items.size();

  // Balanced by row count, cut only at transaction boundaries — the same
  // invariant the in-process partitioned executors rely on: support is
  // exact because a transaction's rows never straddle shards.
  const size_t num_shards = std::min(args.shards, txns.size());
  if (num_shards < args.shards) {
    std::fprintf(stderr,
                 "only %zu transactions; creating %zu shards instead of %zu\n",
                 txns.size(), num_shards, args.shards);
  }
  const size_t target = (total_rows + num_shards - 1) / num_shards;

  ShardManifest manifest;
  size_t begin = 0;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    TransactionDb slice;
    size_t rows = 0;
    // Leave one transaction for each remaining shard.
    while (begin < txns.size() &&
           (rows < target || slice.empty()) &&
           txns.size() - begin > num_shards - shard - 1) {
      rows += txns[begin].items.size();
      slice.push_back(txns[begin]);
      ++begin;
    }

    const std::string path =
        args.out_dir + "/shard" + std::to_string(shard) + ".db";
    ::unlink(path.c_str());
    ::unlink((path + ".wal").c_str());
    DatabaseOptions db_options;
    db_options.file_path = path;
    auto db_or = Database::Open(std::move(db_options));
    if (!db_or.ok()) {
      std::fprintf(stderr, "cannot create %s: %s\n", path.c_str(),
                   db_or.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<Database> db = std::move(db_or).value();
    auto loaded = LoadSalesTable(db.get(), args.table, slice,
                                 TableBacking::kHeap);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    Status closed = db->Close();
    if (!closed.ok()) {
      std::fprintf(stderr, "closing %s failed: %s\n", path.c_str(),
                   closed.ToString().c_str());
      return 1;
    }

    ShardMember member;
    member.id = static_cast<uint32_t>(shard);
    member.kind = ShardMember::Kind::kFile;
    member.path = path;
    member.table = args.table;
    if (!slice.empty()) {
      member.has_range = true;
      member.tid_min = slice.front().id;
      member.tid_max = slice.back().id;
    }
    manifest.members.push_back(member);
    std::printf("shard %zu: %s  %zu transactions, %zu rows\n", shard,
                path.c_str(), slice.size(), rows);
  }

  Status saved = manifest.Save(args.manifest);
  if (!saved.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", args.manifest.c_str(),
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("manifest: %s  (%zu shards, %zu transactions, %zu rows)\n",
              args.manifest.c_str(), num_shards, txns.size(), total_rows);
  return 0;
}

Result<std::unique_ptr<shard::ShardedDatabase>> OpenFromManifest(
    const Args& args) {
  auto manifest_or = ShardManifest::Load(args.manifest);
  if (!manifest_or.ok()) return manifest_or.status();
  shard::ShardedDatabaseOptions options;
  options.run.count_method = args.method == "hash" ? CountMethod::kHash
                                                   : CountMethod::kSortMerge;
  return shard::ShardedDatabase::Open(std::move(manifest_or).value(),
                                      std::move(options));
}

int RunMine(const Args& args) {
  auto db_or = OpenFromManifest(args);
  if (!db_or.ok()) {
    std::fprintf(stderr, "cannot open sharded database: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<shard::ShardedDatabase> db = std::move(db_or).value();

  MiningOptions options;
  options.min_support = args.minsup_pct / 100.0;
  options.min_confidence = args.minconf_pct / 100.0;
  options.max_pattern_length = args.max_k;
  InterruptObserver observer;
  options.observer = &observer;

  auto result_or = db->Mine(options);
  if (!result_or.ok()) {
    std::fprintf(stderr, "distributed mine failed: %s\n",
                 result_or.status().ToString().c_str());
    return result_or.status().IsCancelled() && g_interrupted != 0 ? 130 : 1;
  }
  const MiningResult& result = result_or.value();

  const RuleMode mode = args.rules == "subsets" ? RuleMode::kAnySubset
                                                : RuleMode::kSingleConsequent;
  auto rules_or = GenerateRules(result.itemsets, options, mode);
  if (!rules_or.ok()) {
    std::fprintf(stderr, "rule generation failed: %s\n",
                 rules_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<AssociationRule>& rules = rules_or.value();

  if (args.format == "csv") {
    // The same renderer setm_mine and the server's RULES verb use: the
    // distributed answer diffs byte-for-byte against the single-node one.
    const std::string csv = FormatRulesCsv(rules);
    std::fwrite(csv.data(), 1, csv.size(), stdout);
  } else {
    std::printf("%llu transactions, %zu frequent patterns, %zu rules "
                "(%zu shards, minsup %.2f%%, minconf %.0f%%)\n",
                static_cast<unsigned long long>(
                    result.itemsets.num_transactions),
                result.itemsets.TotalPatterns(), rules.size(),
                db->backends().size(), args.minsup_pct, args.minconf_pct);
    for (const AssociationRule& r : rules) {
      std::printf("%s  (lift %.2f)\n", FormatRule(r).c_str(), r.lift);
    }
  }

  if (args.stats) {
    std::fprintf(stderr, "\niterations:\n");
    for (const IterationStats& it : result.iterations) {
      std::fprintf(stderr,
                   "  k=%zu |R'|=%llu |R|=%llu |C|=%llu  %.3f ms\n", it.k,
                   static_cast<unsigned long long>(it.r_prime_rows),
                   static_cast<unsigned long long>(it.r_rows),
                   static_cast<unsigned long long>(it.c_size),
                   it.seconds * 1000.0);
    }
    std::fprintf(stderr, "total: %.3f s\n", result.total_seconds);
  }

  Status closed = db->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "closing sharded database failed: %s\n",
                 closed.ToString().c_str());
    return 1;
  }
  return 0;
}

int RunStats(const Args& args) {
  auto db_or = OpenFromManifest(args);
  if (!db_or.ok()) {
    std::fprintf(stderr, "cannot open sharded database: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<shard::ShardedDatabase> db = std::move(db_or).value();
  std::printf("epoch %llu, %zu shards\n",
              static_cast<unsigned long long>(db->manifest().epoch),
              db->manifest().members.size());
  bool all_reachable = true;
  for (const shard::ShardMemberHealth& member : db->Health()) {
    all_reachable = all_reachable && member.health.reachable;
    std::printf("shard %u %s reachable=%s transactions=%llu rows=%llu "
                "bytes=%llu\n",
                member.id, member.name.c_str(),
                member.health.reachable ? "yes" : "no",
                static_cast<unsigned long long>(member.health.transactions),
                static_cast<unsigned long long>(member.health.sales_rows),
                static_cast<unsigned long long>(member.health.sales_bytes));
  }
  return all_reachable ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleInterrupt;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  if (args.command == "split") return RunSplit(args);
  if (args.command == "mine") return RunMine(args);
  return RunStats(args);
}

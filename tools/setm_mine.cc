// setm_mine — command-line association-rule miner.
//
//   setm_mine --input sales.csv [--minsup 1.0] [--minconf 50]
//             [--algo NAME|list] [--storage memory|heap] [--threads N]
//             [--rules single|subsets]
//             [--max-k N] [--pool-frames N] [--stats] [--format text|csv]
//             [--db FILE] [--store PREFIX] [--append FILE.csv]
//             [--incremental] [--fallback PCT] [--explain]
//
// Reads a (trans_id,item) CSV, mines frequent itemsets with the chosen
// algorithm, and prints rules. Every request — cold mine, stored-run
// re-query, append batch — is answered through the MiningPlanner, which
// picks one of three strategies and can explain its choice (--explain):
//
//   cache-filter  a stored run dominates the query: filter the stored
//                 level relations, zero mining iterations;
//   delta-derive  the store is stale but the batch fits the --fallback
//                 budget: incremental derivation via the DeltaMiner;
//   full-mine     registry dispatch of --algo, optionally writing the
//                 result back into the store.
//
// Algorithms are dispatched uniformly through the MinerRegistry: `--algo
// list` enumerates every registered algorithm (one "name<TAB>description"
// line each), and `--algo NAME` runs it — a newly registered algorithm
// needs no CLI change. `--algorithm` is the backward-compatible alias.
// With --format csv the rules come out as machine-readable rows; --stats
// adds per-iteration, I/O and plan accounting.
//
// Incremental modes (SETM only): --store PREFIX materializes the mined
// itemsets as catalog relations (PREFIX_meta, PREFIX_f1, PREFIX_f2, ...);
// --append FILE.csv feeds a second batch of transactions (ids above the
// first file's) and re-derives the combined result — incrementally with
// --incremental (falling back to a full remine when the batch exceeds
// --fallback PCT percent of the combined database), or by a plain full
// remine without it. Rules are printed for the final result.
//
// Persistence: --db FILE puts the whole database — SALES, the stored
// itemset relations and the catalog — in a durable file, so store and
// append can run in *separate invocations*:
//
//   setm_mine --db sales.db --input base.csv --store fi      # process A
//   setm_mine --db sales.db --append delta.csv --incremental # process B
//   setm_mine --db sales.db --store fi --minsup 30           # re-query
//
// Process B reopens the file, finds SALES and the stored run in the
// catalog, and brings both up to date without --input (passing --input at
// reopen is an error — the base data already lives in the file). The
// re-query at a higher support is answered entirely from the stored
// relations (cache-filter), without mining. --db implies --storage heap;
// it requires store mode (--store and/or --append).

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "core/miner_registry.h"
#include "core/mining_planner.h"
#include "core/rules.h"
#include "core/setm.h"
#include "datagen/transaction_io.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace setm;

/// Set by SIGINT/SIGTERM; polled by the per-iteration observer, so a
/// Ctrl-C stops the miner (or rule generator) within one iteration, the
/// scratch relations are dropped, and the database still gets its
/// checkpointing Close() — the same cooperative-cancellation seam the
/// server's disconnect handling uses.
volatile std::sig_atomic_t g_interrupted = 0;

void HandleInterrupt(int) { g_interrupted = 1; }

class InterruptObserver : public MiningObserver {
 public:
  bool OnIteration(const IterationStats&) override {
    return g_interrupted == 0;
  }
};

struct Args {
  std::string input;
  double minsup_pct = 1.0;
  double minconf_pct = 50.0;
  std::string algorithm = "setm";
  std::string storage = "memory";
  std::string rules = "single";
  std::string format = "text";
  std::string store_prefix;
  std::string append;
  std::string db;
  double fallback_pct = 25.0;
  size_t max_k = 0;
  size_t pool_frames = 0;  // 0 = DatabaseOptions default
  size_t threads = 1;
  bool stats = false;
  bool incremental = false;
  bool explain = false;
  bool storage_set = false;
  std::string metrics;  // "", "text", "json" or "prom"
  bool trace = false;
};

/// Owns the per-request trace roots when --trace is on. Each
/// planner.Execute gets a fresh root span measured against the database's
/// I/O ledger; main() renders the collected trees at exit.
struct TraceSink {
  bool enabled = false;
  const IoStats* ledger = nullptr;
  std::vector<std::unique_ptr<obs::TraceSpan>> roots;

  /// Null when tracing is off — PlanRequest::trace accepts that directly.
  obs::TraceSpan* NewRoot() {
    if (!enabled) return nullptr;
    roots.push_back(std::make_unique<obs::TraceSpan>("request", ledger));
    return roots.back().get();
  }
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --input FILE.csv [--minsup PCT] [--minconf PCT]\n"
      "          [--algo NAME|list] (--algorithm is an alias)\n"
      "          [--storage memory|heap] [--threads N]\n"
      "          [--rules single|subsets]\n"
      "          [--max-k N] [--pool-frames N] [--stats] [--format text|csv]\n"
      "          [--db FILE] [--store PREFIX] [--append FILE.csv]\n"
      "          [--incremental] [--fallback PCT] [--explain]\n"
      "          [--metrics text|json|prom] [--trace]\n"
      "(--input may be omitted when --db reopens an existing database;\n"
      " --algo list prints the registered algorithms and exits;\n"
      " --explain prints the mining plan for every request to stderr;\n"
      " --metrics dumps the process metrics registry to stderr at exit;\n"
      " --trace prints one span tree per mining request to stderr)\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args* out) {
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--input") == 0) {
      const char* v = need_value("--input");
      if (v == nullptr) return false;
      out->input = v;
    } else if (std::strcmp(argv[i], "--minsup") == 0) {
      const char* v = need_value("--minsup");
      if (v == nullptr) return false;
      out->minsup_pct = std::atof(v);
    } else if (std::strcmp(argv[i], "--minconf") == 0) {
      const char* v = need_value("--minconf");
      if (v == nullptr) return false;
      out->minconf_pct = std::atof(v);
    } else if (std::strcmp(argv[i], "--algo") == 0 ||
               std::strcmp(argv[i], "--algorithm") == 0) {
      const char* v = need_value("--algo");
      if (v == nullptr) return false;
      out->algorithm = v;
    } else if (std::strcmp(argv[i], "--storage") == 0) {
      const char* v = need_value("--storage");
      if (v == nullptr) return false;
      out->storage = v;
      out->storage_set = true;
    } else if (std::strcmp(argv[i], "--db") == 0) {
      const char* v = need_value("--db");
      if (v == nullptr) return false;
      out->db = v;
    } else if (std::strcmp(argv[i], "--rules") == 0) {
      const char* v = need_value("--rules");
      if (v == nullptr) return false;
      out->rules = v;
    } else if (std::strcmp(argv[i], "--max-k") == 0) {
      const char* v = need_value("--max-k");
      if (v == nullptr) return false;
      out->max_k = static_cast<size_t>(std::atol(v));
    } else if (std::strcmp(argv[i], "--pool-frames") == 0) {
      const char* v = need_value("--pool-frames");
      if (v == nullptr) return false;
      long n = std::atol(v);
      if (n < 1) {
        std::fprintf(stderr, "--pool-frames must be >= 1\n");
        return false;
      }
      out->pool_frames = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = need_value("--threads");
      if (v == nullptr) return false;
      long n = std::atol(v);
      if (n < 1) {
        std::fprintf(stderr, "--threads must be >= 1\n");
        return false;
      }
      out->threads = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--store") == 0) {
      const char* v = need_value("--store");
      if (v == nullptr) return false;
      out->store_prefix = v;
    } else if (std::strcmp(argv[i], "--append") == 0) {
      const char* v = need_value("--append");
      if (v == nullptr) return false;
      out->append = v;
    } else if (std::strcmp(argv[i], "--incremental") == 0) {
      out->incremental = true;
    } else if (std::strcmp(argv[i], "--fallback") == 0) {
      const char* v = need_value("--fallback");
      if (v == nullptr) return false;
      out->fallback_pct = std::atof(v);
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      out->stats = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      out->explain = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      const char* v = need_value("--metrics");
      if (v == nullptr) return false;
      out->metrics = v;
      if (out->metrics != "text" && out->metrics != "json" &&
          out->metrics != "prom") {
        std::fprintf(stderr, "--metrics must be text, json or prom\n");
        return false;
      }
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      out->trace = true;
    } else if (std::strcmp(argv[i], "--format") == 0) {
      const char* v = need_value("--format");
      if (v == nullptr) return false;
      out->format = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return false;
    }
  }
  if (out->algorithm == "list") return true;  // no input needed to list
  if (out->input.empty() && out->db.empty()) {
    std::fprintf(stderr, "--input is required\n");
    return false;
  }
  if ((!out->store_prefix.empty() || !out->append.empty() ||
       !out->db.empty()) &&
      out->algorithm != "setm") {
    std::fprintf(stderr, "--db/--store/--append require --algo setm\n");
    return false;
  }
  if (out->incremental && out->append.empty()) {
    std::fprintf(stderr, "--incremental requires --append\n");
    return false;
  }
  if (!out->db.empty()) {
    if (out->store_prefix.empty() && out->append.empty()) {
      std::fprintf(stderr, "--db requires --store and/or --append\n");
      return false;
    }
    if (out->storage_set && out->storage != "heap") {
      std::fprintf(stderr,
                   "--db persists tables to the file and requires "
                   "--storage heap (the default with --db)\n");
      return false;
    }
    out->storage = "heap";  // memory-backed rows would not survive restart
  }
  return true;
}

void MaybeExplain(const Args& args, const MiningPlan& plan) {
  if (!args.explain) return;
  std::fprintf(stderr, "plan:\n");
  // Indent the multi-line rendering so plans stand out from other stderr.
  std::string text = plan.Explain();
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::fprintf(stderr, "  %.*s\n", static_cast<int>(end - start),
                 text.c_str() + start);
    if (end == text.size()) break;
    start = end + 1;
  }
}

SetmOptions PhysicalKnobs(const Args& args) {
  SetmOptions knobs;
  knobs.storage = args.storage == "heap" ? TableBacking::kHeap
                                         : TableBacking::kMemory;
  knobs.num_threads = args.threads;
  return knobs;
}

/// Uniform dispatch of one-shot requests: every algorithm — built-in or
/// registered later — runs through the planner's full-mine arm, which
/// creates it from the MinerRegistry. The CLI knows nothing about
/// individual miners.
Result<MiningResult> RunAlgorithm(const Args& args, Database* db,
                                  const TransactionDb& txns,
                                  const MiningOptions& options,
                                  PlanStats* plan_stats, TraceSink* sink) {
  auto info = MinerRegistry::Info(args.algorithm);
  if (!info.ok()) return info.status();
  if (args.threads > 1 && !info.value().honors_threads) {
    return Status::InvalidArgument(
        "--threads needs a partition-parallel algorithm; '" +
        args.algorithm + "' is not (see --algo list)");
  }
  PlannerOptions planner_options;  // no store prefix: plain full mine
  planner_options.algorithm = args.algorithm;
  planner_options.setm = PhysicalKnobs(args);
  MiningPlanner planner(db, planner_options);
  PlanRequest request;
  request.transactions = &txns;
  request.options = options;
  request.trace = sink->NewRoot();
  auto exec_or = planner.Execute(request);
  if (request.trace != nullptr) request.trace->End();
  if (!exec_or.ok()) return exec_or.status();
  MaybeExplain(args, exec_or.value().plan);
  *plan_stats = planner.stats();
  return std::move(exec_or).value().result;
}

/// The --store/--append path (SETM only): all request routing is the
/// planner's job — the CLI merely materializes SALES on first contact,
/// loads the append batch, and narrates what the planner decided.
///
/// `txns` is null when no --input was given: with --db the SALES relation
/// (and usually the stored run) already live in the reopened database file.
Result<MiningResult> RunStoreAppend(const Args& args, Database* db,
                                    const TransactionDb* txns,
                                    const MiningOptions& options,
                                    PlanStats* plan_stats, TraceSink* sink) {
  const TableBacking backing = args.storage == "heap" ? TableBacking::kHeap
                                                      : TableBacking::kMemory;
  const std::string prefix =
      args.store_prefix.empty() ? "fi" : args.store_prefix;

  PlannerOptions planner_options;
  planner_options.store_prefix = prefix;
  planner_options.store_backing = backing;
  planner_options.algorithm = "setm";
  planner_options.setm = PhysicalKnobs(args);
  // Without --incremental an append is answered by a full remine — the
  // comparison baseline — which a zero derivation budget enforces.
  planner_options.full_remine_fraction =
      args.incremental ? args.fallback_pct / 100.0 : 0.0;
  MiningPlanner planner(db, planner_options);

  // First contact vs reopen. The probe is free of side effects; its only
  // job here is the CLI narration and the --input sanity checks.
  Table* sales = nullptr;
  const bool have_sales = db->catalog()->HasTable("sales");
  if (have_sales) {
    auto probe = planner.cache()->Probe();
    if (!probe.ok() && probe.status().code() != StatusCode::kNotFound) {
      return probe.status();
    }
    if (txns != nullptr) {
      return probe.ok()
                 ? Status::InvalidArgument(
                       "database file already holds the SALES relation and "
                       "stored run '" + prefix +
                       "'; omit --input when reopening with --db")
                 : Status::InvalidArgument(
                       "database file already holds the SALES relation (but "
                       "no stored run '" + prefix +
                       "'); omit --input to remine it and build the store");
    }
    auto sales_or = db->catalog()->GetTable("sales");
    if (!sales_or.ok()) return sales_or.status();
    sales = sales_or.value();
    if (probe.ok()) {
      // Pattern count for the narration: one cheap load of the stored
      // levels (the planner re-reads what it needs through the cache).
      auto stored_or = planner.cache()->LoadAll();
      if (!stored_or.ok()) return stored_or.status();
      std::fprintf(stderr,
                   "reopened database: %llu rows in sales, %zu stored "
                   "patterns under '%s' (watermark %d)\n",
                   static_cast<unsigned long long>(sales->num_rows()),
                   stored_or.value().itemsets.TotalPatterns(), prefix.c_str(),
                   static_cast<int>(probe.value().watermark));
    } else {
      // SALES survived a previous invocation but the requested store did
      // not (killed before the write-back, or a different --store prefix):
      // the planner remines the persisted rows and (re)builds the store.
      std::fprintf(stderr,
                   "reopened database: %llu rows in sales, no stored run "
                   "under '%s' — remining\n",
                   static_cast<unsigned long long>(sales->num_rows()),
                   prefix.c_str());
    }
  } else {
    if (txns == nullptr) {
      return Status::InvalidArgument(
          "database file holds no stored run under '" + prefix +
          "'; --input is required to build one");
    }
    auto sales_or = LoadSalesTable(db, "sales", *txns, backing);
    if (!sales_or.ok()) return sales_or.status();
    sales = sales_or.value();
  }

  // The base request: answered from the store when it dominates, mined and
  // written back otherwise.
  PlanRequest base_request;
  base_request.table = sales;
  base_request.options = options;
  base_request.trace = sink->NewRoot();
  auto base_or = planner.Execute(base_request);
  if (base_request.trace != nullptr) base_request.trace->End();
  if (!base_or.ok()) return base_or.status();
  PlanExecution base = std::move(base_or).value();
  MaybeExplain(args, base.plan);
  if (!have_sales) {
    // First materialization: narrate the store DDL like CREATE TABLE would.
    ItemsetStore* store = planner.cache()->store();
    if (base.result.itemsets.MaxSize() == 0) {
      std::fprintf(stderr, "stored empty result as relation %s\n",
                   store->MetaTableName().c_str());
    } else {
      std::fprintf(stderr,
                   "stored %zu patterns as relations %s, %s .. %s\n",
                   base.result.itemsets.TotalPatterns(),
                   store->MetaTableName().c_str(),
                   store->LevelTableName(1).c_str(),
                   store->LevelTableName(base.result.itemsets.MaxSize())
                       .c_str());
    }
  }

  if (args.append.empty()) {
    *plan_stats = planner.stats();
    return std::move(base.result);
  }

  auto delta_or = LoadTransactionsCsv(args.append);
  if (!delta_or.ok()) return delta_or.status();
  const TransactionDb& delta = delta_or.value();

  PlanRequest append_request;
  append_request.table = sales;
  append_request.append = &delta;
  append_request.options = options;
  append_request.trace = sink->NewRoot();
  auto appended_or = planner.Execute(append_request);
  if (append_request.trace != nullptr) append_request.trace->End();
  if (!appended_or.ok()) return appended_or.status();
  PlanExecution appended = std::move(appended_or).value();
  MaybeExplain(args, appended.plan);
  if (args.incremental) {
    const bool full_remine =
        appended.plan.strategy != PlanStrategy::kDeltaDerive ||
        appended.delta_full_remine;
    std::fprintf(
        stderr, "incremental update: %s, %llu delta transactions, "
                "%llu borderline re-counts\n",
        full_remine ? "full-remine fallback" : "delta path",
        static_cast<unsigned long long>(appended.delta_transactions),
        static_cast<unsigned long long>(appended.borderline_candidates));
  }
  *plan_stats = planner.stats();
  return std::move(appended.result);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage(argv[0]);
    return 2;
  }

  if (args.algorithm == "list") {
    for (const MinerInfo& info : MinerRegistry::List()) {
      std::printf("%s\t%s\n", info.name.c_str(), info.description.c_str());
    }
    return 0;
  }

  TransactionDb txns;
  bool have_txns = false;
  if (!args.input.empty()) {
    auto txns_or = LoadTransactionsCsv(args.input);
    if (!txns_or.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", args.input.c_str(),
                   txns_or.status().ToString().c_str());
      return 1;
    }
    txns = std::move(txns_or).value();
    have_txns = true;
  }

  MiningOptions options;
  options.min_support = args.minsup_pct / 100.0;
  options.min_confidence = args.minconf_pct / 100.0;
  options.max_pattern_length = args.max_k;

  InterruptObserver interrupt_observer;
  options.observer = &interrupt_observer;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleInterrupt;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  // With --db the database lives in (and persists to) a file: Open()
  // validates the superblock of an existing file and rebuilds its catalog,
  // or initializes a fresh one; Close() at the end of main checkpoints and
  // reports failures (the destructor would only log them).
  DatabaseOptions db_options;
  db_options.file_path = args.db;
  if (args.pool_frames > 0) db_options.pool_frames = args.pool_frames;
  auto db_or = Database::Open(db_options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "cannot open database %s: %s\n",
                 args.db.empty() ? "(in-memory)" : args.db.c_str(),
                 db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(db_or).value();

  PlanStats plan_stats;
  TraceSink sink;
  sink.enabled = args.trace;
  sink.ledger = db->io_stats();
  const bool store_mode = !args.store_prefix.empty() || !args.append.empty();
  auto result =
      store_mode
          ? RunStoreAppend(args, db.get(), have_txns ? &txns : nullptr,
                           options, &plan_stats, &sink)
          : RunAlgorithm(args, db.get(), txns, options, &plan_stats, &sink);
  if (!result.ok()) {
    if (result.status().IsCancelled() && g_interrupted != 0) {
      std::fprintf(stderr, "interrupted; closing database\n");
      Status closed = db->Close();
      if (!closed.ok()) {
        std::fprintf(stderr, "closing database failed: %s\n",
                     closed.ToString().c_str());
      }
      return 130;
    }
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const RuleMode mode = args.rules == "subsets" ? RuleMode::kAnySubset
                                                : RuleMode::kSingleConsequent;
  WallTimer rules_timer;
  auto rules_or = GenerateRules(result.value().itemsets, options, mode);
  if (!rules_or.ok()) {
    if (rules_or.status().IsCancelled() && g_interrupted != 0) {
      std::fprintf(stderr, "interrupted; closing database\n");
      Status closed = db->Close();
      if (!closed.ok()) {
        std::fprintf(stderr, "closing database failed: %s\n",
                     closed.ToString().c_str());
      }
      return 130;
    }
    std::fprintf(stderr, "rule generation failed: %s\n",
                 rules_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<AssociationRule>& rules = rules_or.value();
  if (!sink.roots.empty()) {
    // Rule generation answers the *last* request's result; hang its span
    // under that root (pure in-memory work, zero page reads).
    obs::TraceSpan* rules_span = sink.roots.back()->AddCompletedChild(
        "rules", rules_timer.ElapsedSeconds(), 0);
    rules_span->AddCount("rules", rules.size());
  }

  if (args.format == "csv") {
    // One shared renderer with the server's RULES verb: both surfaces emit
    // byte-identical CSV by construction.
    const std::string csv = FormatRulesCsv(rules);
    std::fwrite(csv.data(), 1, csv.size(), stdout);
  } else {
    std::printf("%llu transactions, %zu frequent patterns, %zu rules "
                "(%s, minsup %.2f%%, minconf %.0f%%)\n",
                static_cast<unsigned long long>(
                    result.value().itemsets.num_transactions),
                result.value().itemsets.TotalPatterns(), rules.size(),
                args.algorithm.c_str(), args.minsup_pct, args.minconf_pct);
    for (const AssociationRule& r : rules) {
      std::printf("%s  (lift %.2f)\n", FormatRule(r).c_str(), r.lift);
    }
  }

  if (args.trace) {
    std::fprintf(stderr, "trace:\n");
    for (const auto& root : sink.roots) {
      std::fputs(root->Render(2).c_str(), stderr);
    }
  }

  if (args.stats) {
    std::fprintf(stderr, "\niterations:\n");
    for (const IterationStats& it : result.value().iterations) {
      std::fprintf(stderr,
                   "  k=%zu |R'|=%llu |R|=%llu |C|=%llu  %.3f ms\n", it.k,
                   static_cast<unsigned long long>(it.r_prime_rows),
                   static_cast<unsigned long long>(it.r_rows),
                   static_cast<unsigned long long>(it.c_size),
                   it.seconds * 1000.0);
    }
    std::fprintf(stderr, "io: %s\n", result.value().io.ToString().c_str());
    // The whole-process ledger: with --db this additionally covers opening
    // the file, rebuilding the catalog and loading the stored run — the
    // fair basis for cross-invocation page-count comparisons.
    std::fprintf(stderr, "db io: %s\n",
                 db->io_stats()->ToString().c_str());
    // Both pools (base + temp) summed, matching the scope of `db io:`.
    BufferPool::PoolStats pool = db->pool()->Stats();
    const BufferPool::PoolStats temp = db->temp_pool()->Stats();
    pool.hits += temp.hits;
    pool.misses += temp.misses;
    pool.evictions += temp.evictions;
    pool.dirty_writebacks += temp.dirty_writebacks;
    pool.eviction_retries += temp.eviction_retries;
    const uint64_t fetches = pool.hits + pool.misses;
    std::fprintf(stderr,
                 "pool: hits=%llu misses=%llu hit_ratio=%.3f evictions=%llu "
                 "writebacks=%llu retries=%llu\n",
                 static_cast<unsigned long long>(pool.hits),
                 static_cast<unsigned long long>(pool.misses),
                 fetches == 0 ? 0.0
                              : static_cast<double>(pool.hits) /
                                    static_cast<double>(fetches),
                 static_cast<unsigned long long>(pool.evictions),
                 static_cast<unsigned long long>(pool.dirty_writebacks),
                 static_cast<unsigned long long>(pool.eviction_retries));
    const WalStats wal = db->wal_stats();
    std::fprintf(stderr, "wal: records=%llu commits=%llu bytes=%llu "
                         "fsyncs=%llu\n",
                 static_cast<unsigned long long>(wal.page_records),
                 static_cast<unsigned long long>(wal.commit_records),
                 static_cast<unsigned long long>(wal.bytes_appended),
                 static_cast<unsigned long long>(wal.fsyncs));
    std::fprintf(stderr, "plan: %s\n", plan_stats.ToString().c_str());
    std::fprintf(stderr, "total: %.3f s\n", result.value().total_seconds);
  }

  if (!args.metrics.empty()) {
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Global()->Snapshot();
    std::string rendered;
    if (args.metrics == "json") {
      rendered = obs::RenderJson(snapshot);
    } else if (args.metrics == "prom") {
      rendered = obs::RenderPrometheus(snapshot);
    } else {
      rendered = obs::RenderText(snapshot);
    }
    std::fputs(rendered.c_str(), stderr);
  }

  // Explicit close: the final checkpoint's status is the only signal that
  // this run's appends actually reached stable storage, so surface it as
  // the process exit code instead of swallowing it in the destructor.
  Status closed = db->Close();
  if (!closed.ok()) {
    std::fprintf(stderr, "closing database failed: %s\n",
                 closed.ToString().c_str());
    return 1;
  }
  return 0;
}

#!/usr/bin/env bash
# SIGKILL crash-recovery smoke for `setm_mine --db`: append a series of
# delta batches to a database file, killing the process mid-append at a
# different point for every batch, then retry each interrupted batch the
# way a real ingest pipeline would. A control database receives the same
# batches with no kills.
#
# Asserts, per the crash-consistency acceptance criteria:
#   1. a SIGKILL at any point leaves the file openable — every retry either
#      succeeds or reports the batch as already applied (watermark check);
#      a corruption error is an instant failure;
#   2. after all batches the killed database's stored run is bit-identical
#      to the control's (rules and SALES row count);
#   3. a stray kill never tears a batch: retries of partially-persisted
#      batches are absorbed by the orphan scan, not double-counted.
#
#   usage: scripts/smoke_crash_recovery.sh path/to/setm_mine [workdir]
set -euo pipefail

SETM_MINE="${1:?usage: smoke_crash_recovery.sh path/to/setm_mine [workdir]}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"

MINSUP=20
POOL=32
BATCHES=6
BASE_TXNS=50000
BATCH_TXNS=1000

# Deterministic correlated data: a frequent {1,2}(+3,+4) core plus
# id-dependent filler — same shape as smoke_db_persist.sh but sized so one
# append takes tens of milliseconds, giving the SIGKILLs below a real
# window to land mid-flight.
awk -v n="$BASE_TXNS" 'BEGIN{for(t=1;t<=n;t++){print t","1; print t","2;
  if(t%2==0)print t","3; if(t%3==0)print t","4;
  print t","(5+t%7); print t","(12+t%11)}}' > "$WORK/base.csv"
for ((b=1; b<=BATCHES; b++)); do
  awk -v lo=$((BASE_TXNS + (b-1)*BATCH_TXNS + 1)) \
      -v hi=$((BASE_TXNS + b*BATCH_TXNS)) \
    'BEGIN{for(t=lo;t<=hi;t++){print t","1; print t","2;
      if(t%2==0)print t","3; print t","(5+t%7)}}' > "$WORK/batch_$b.csv"
done

append_args() {  # $1 = db file, $2 = batch csv
  echo --db "$1" --append "$2" --incremental --store fi \
    --minsup "$MINSUP" --pool-frames "$POOL" --format csv
}

echo "== seed both databases with the mined base run (no kills)"
for db in control crash; do
  "$SETM_MINE" --db "$WORK/$db.db" --input "$WORK/base.csv" --store fi \
    --minsup "$MINSUP" --pool-frames "$POOL" --format csv \
    > /dev/null 2> "$WORK/seed_$db.err"
done

echo "== control: $BATCHES clean appends"
for ((b=1; b<=BATCHES; b++)); do
  # shellcheck disable=SC2046
  "$SETM_MINE" $(append_args "$WORK/control.db" "$WORK/batch_$b.csv") \
    > /dev/null 2> "$WORK/control_$b.err"
done

echo "== crash db: kill each append mid-flight, then retry"
DELAYS=(0.010 0.018 0.026 0.034 0.042 0.055)
replayed=0
for ((b=1; b<=BATCHES; b++)); do
  delay="${DELAYS[$(( (b-1) % ${#DELAYS[@]} ))]}"
  # shellcheck disable=SC2046
  "$SETM_MINE" $(append_args "$WORK/crash.db" "$WORK/batch_$b.csv") \
    > /dev/null 2> "$WORK/killed_$b.err" &
  pid=$!
  sleep "$delay"
  kill -KILL "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true

  # The retry is the openability check: it must either apply the batch or
  # report it already applied — never a corruption error.
  # shellcheck disable=SC2046
  if "$SETM_MINE" $(append_args "$WORK/crash.db" "$WORK/batch_$b.csv") \
       > /dev/null 2> "$WORK/retry_$b.err"; then
    replayed=$((replayed + 1))
  elif grep -q "at or below the stored watermark" "$WORK/retry_$b.err"; then
    echo "   batch $b survived the kill (already applied)"
  else
    echo "FAIL: batch $b retry failed after SIGKILL (delay ${delay}s):"
    cat "$WORK/retry_$b.err"
    exit 1
  fi
done
echo "   $replayed/$BATCHES batches needed the retry"

echo "== final state: killed database must match the control"
for db in control crash; do
  "$SETM_MINE" --db "$WORK/$db.db" --store fi --minsup "$MINSUP" \
    --pool-frames "$POOL" --format csv \
    > "$WORK/${db}_final.csv" 2> "$WORK/${db}_final.err"
done

rows_of() { sed -n 's/^reopened database: \([0-9]*\) rows in sales.*/\1/p' "$1"; }
CONTROL_ROWS="$(rows_of "$WORK/control_final.err")"
CRASH_ROWS="$(rows_of "$WORK/crash_final.err")"
echo "sales rows: control=$CONTROL_ROWS crash=$CRASH_ROWS"
if [[ -z "$CONTROL_ROWS" || "$CONTROL_ROWS" != "$CRASH_ROWS" ]]; then
  echo "FAIL: SALES row counts diverged (torn or double-applied batch)"
  exit 1
fi

if ! diff <(sort "$WORK/control_final.csv") <(sort "$WORK/crash_final.csv"); then
  echo "FAIL: stored run differs between killed and control databases"
  exit 1
fi
echo "rules identical ($(($(wc -l < "$WORK/crash_final.csv") - 1)) rules)"

echo "crash-recovery smoke OK"

#!/usr/bin/env bash
# End-to-end smoke of the observability subsystem behind setm_mine:
#
#   process A  mines at a low threshold with a small pool and stores the
#              run, exporting --trace and --metrics prom;
#   process B  reopens the file and re-asks at a HIGHER threshold, same
#              exports.
#
# Asserts, per the ISSUE 8 acceptance criteria:
#   1. A's trace is a full-mine tree: a "request" root tagged
#      strategy=full-mine with plan and mine children, one "iteration"
#      span per pass, and at least one iteration carrying a non-zero
#      page-read delta (the pool is sized to force real traffic);
#   2. B's trace is a cache-filter tree: strategy=cache-filter, a "load"
#      child, and ZERO iteration spans — the no-mining guarantee made
#      structural;
#   3. both Prometheus exports parse: unique # TYPE names, every sample
#      line well-formed, cumulative histogram buckets monotone with the
#      +Inf bucket equal to _count, and the io/pool/wal/plan/mine families
#      all present;
#   4. the --stats ledger carries the pool: and wal: lines.
#
#   usage: scripts/smoke_observability.sh path/to/setm_mine [workdir]
set -euo pipefail

SETM_MINE="${1:?usage: smoke_observability.sh path/to/setm_mine [workdir]}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"

STORE_MINSUP=2
QUERY_MINSUP=3
POOL=16   # small on purpose: iteration spans must show real page reads

awk 'BEGIN{for(t=1;t<=2000;t++){print t","1; print t","2;
  if(t%2==0)print t","3; if(t%3==0)print t","4;
  print t","(5+t%7); print t","(12+t%11)}}' > "$WORK/sales.csv"

echo "== process A: full mine + store, tracing and exporting"
"$SETM_MINE" --db "$WORK/sales.db" --input "$WORK/sales.csv" --store fi \
  --minsup "$STORE_MINSUP" --pool-frames "$POOL" --format csv \
  --trace --metrics prom --stats \
  > /dev/null 2> "$WORK/a.err"

echo "== process B: dominated re-query, tracing and exporting"
"$SETM_MINE" --db "$WORK/sales.db" --store fi --minsup "$QUERY_MINSUP" \
  --pool-frames "$POOL" --format csv --trace --metrics prom --stats \
  > /dev/null 2> "$WORK/b.err"

# The trace block: from "trace:" to the first non-indented line.
trace_of() {
  awk '/^trace:$/{blk=1; next} blk && /^[^ ]/{blk=0} blk' "$1"
}
trace_of "$WORK/a.err" > "$WORK/a.trace"
trace_of "$WORK/b.err" > "$WORK/b.trace"

# -- 1. full-mine trace shape ------------------------------------------------
grep -q "request .*strategy=full-mine" "$WORK/a.trace" || {
  echo "FAIL: A's root span is not tagged full-mine:"; cat "$WORK/a.trace"
  exit 1
}
grep -q "^    plan " "$WORK/a.trace" || {
  echo "FAIL: A's trace has no plan span"; cat "$WORK/a.trace"; exit 1
}
grep -q "^    mine .*algorithm=" "$WORK/a.trace" || {
  echo "FAIL: A's trace has no mine span"; cat "$WORK/a.trace"; exit 1
}
A_ITERS="$(grep -c "^      iteration .*k=" "$WORK/a.trace" || true)"
if [[ "$A_ITERS" -lt 2 ]]; then
  echo "FAIL: full mine traced only $A_ITERS iteration spans"
  cat "$WORK/a.trace"; exit 1
fi
grep -q "^      iteration .*reads=[1-9]" "$WORK/a.trace" || {
  echo "FAIL: no iteration span carries a page-read delta (pool=$POOL)"
  cat "$WORK/a.trace"; exit 1
}
echo "full-mine trace: $A_ITERS iteration spans with read deltas"

# -- 2. cache-filter trace shape ---------------------------------------------
grep -q "request .*strategy=cache-filter" "$WORK/b.trace" || {
  echo "FAIL: B's root span is not tagged cache-filter:"; cat "$WORK/b.trace"
  exit 1
}
grep -q "^    load " "$WORK/b.trace" || {
  echo "FAIL: B's trace has no load span"; cat "$WORK/b.trace"; exit 1
}
if grep -q "iteration" "$WORK/b.trace"; then
  echo "FAIL: cache-filtered re-query traced mining iterations:"
  cat "$WORK/b.trace"; exit 1
fi
echo "cache-filter trace: load span, zero iteration spans"

# -- 3. Prometheus exports parse ----------------------------------------------
# The export block: from the first "# HELP"/"# TYPE" line to the end of the
# metric samples (setm_mine prints it last before exiting).
prom_of() {
  awk '/^# (HELP|TYPE) /{blk=1}
       blk && !/^(# (HELP|TYPE) )|^[A-Za-z_:]/{blk=0}
       blk' "$1"
}
check_prom() {
  local file="$1"; shift
  prom_of "$file" > "$file.prom"
  [[ -s "$file.prom" ]] || {
    echo "FAIL: no Prometheus export in $file"; exit 1;
  }
  awk '
    /^# HELP /{next}
    /^# TYPE /{
      if (seen[$3]++) { print "FAIL: duplicate # TYPE for " $3; bad=1 }
      next
    }
    {
      if ($0 !~ /^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9]+$/) {
        print "FAIL: unparseable sample line: " $0; bad=1; next
      }
      name=$1
      if (name ~ /_bucket\{le="\+Inf"\}$/) {
        base=name; sub(/_bucket\{.*/, "", base)
        inf[base]=$2
      } else if (name ~ /_bucket\{/) {
        base=name; sub(/_bucket\{.*/, "", base)
        if ($2+0 < last[base]+0) {
          print "FAIL: non-monotone buckets for " base; bad=1
        }
        last[base]=$2
      } else if (name ~ /_count$/) {
        base=name; sub(/_count$/, "", base)
        if (base in inf && inf[base]+0 != $2+0) {
          print "FAIL: +Inf bucket != _count for " base; bad=1
        }
      }
    }
    END{ exit bad }
  ' "$file.prom" || { echo "(export was $file.prom)"; exit 1; }
  # The stack must report: every family that had traffic is present.
  for family in "$@"; do
    grep -q "^# TYPE $family " "$file.prom" || {
      echo "FAIL: metric family $family missing from $file.prom"; exit 1;
    }
  done
}
# A mined and appended: every instrumented layer saw traffic. B only
# loaded the store, so the WAL-append and iteration families (registered
# lazily, on first use) are legitimately absent from its export.
check_prom "$WORK/a.err" setm_io_page_reads_total setm_pool_hits_total \
  setm_wal_page_records_total setm_plan_requests_total \
  setm_mine_iterations_total
check_prom "$WORK/b.err" setm_io_page_reads_total setm_pool_hits_total \
  setm_plan_requests_total
echo "Prometheus exports parse (unique names, monotone buckets)"

# -- 4. the --stats ledger lines ----------------------------------------------
for f in "$WORK/a.err" "$WORK/b.err"; do
  grep -Eq "^pool: hits=[0-9]+ misses=[0-9]+ hit_ratio=[0-9.]+" "$f" || {
    echo "FAIL: no pool: ledger line in $f"; exit 1;
  }
  grep -Eq "^wal: records=[0-9]+ commits=[0-9]+ bytes=[0-9]+ fsyncs=[0-9]+" \
    "$f" || { echo "FAIL: no wal: ledger line in $f"; exit 1; }
done
echo "pool: and wal: ledger lines present"

echo "observability smoke OK"

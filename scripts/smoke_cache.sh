#!/usr/bin/env bash
# Two-invocation result-cache smoke for the MiningPlanner behind setm_mine:
#
#   process A  mines at a low support threshold and stores the run;
#   process B  reopens the file and re-asks at a HIGHER threshold;
#   reference  a fresh full mine of the same CSV at the higher threshold.
#
# Asserts, per the plan/execute acceptance criteria:
#   1. process B is answered by the cache-filter strategy (--explain says
#      so, and the PlanStats ledger charges cache_filters=1);
#   2. process B runs ZERO mining iterations (--stats block is empty);
#   3. B's rules are bit-identical to the reference full mine;
#   4. B reads fewer pages than the reference at the same --pool-frames.
#
#   usage: scripts/smoke_cache.sh path/to/setm_mine [workdir]
set -euo pipefail

SETM_MINE="${1:?usage: smoke_cache.sh path/to/setm_mine [workdir]}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"

STORE_MINSUP=2   # store at 2% ...
QUERY_MINSUP=3   # ... re-query at 3%: dominated, must be served cache-only
POOL=32

# Deterministic correlated data: a frequent {1,2}(+3,+4) core plus
# id-dependent filler, 3000 transactions.
awk 'BEGIN{for(t=1;t<=3000;t++){print t","1; print t","2;
  if(t%2==0)print t","3; if(t%3==0)print t","4;
  print t","(5+t%7); print t","(12+t%11)}}' > "$WORK/sales.csv"

echo "== process A: mine at ${STORE_MINSUP}% and store"
"$SETM_MINE" --db "$WORK/sales.db" --input "$WORK/sales.csv" --store fi \
  --minsup "$STORE_MINSUP" --pool-frames "$POOL" --format csv \
  > /dev/null 2> "$WORK/a.err"

echo "== process B: re-query at ${QUERY_MINSUP}% from a second process"
"$SETM_MINE" --db "$WORK/sales.db" --store fi --minsup "$QUERY_MINSUP" \
  --pool-frames "$POOL" --format csv --stats --explain \
  > "$WORK/b_rules.csv" 2> "$WORK/b.err"

grep -q "strategy: cache-filter" "$WORK/b.err" || {
  echo "FAIL: re-query was not cache-filtered:"; cat "$WORK/b.err"; exit 1;
}
grep -q "cache_filters=1" "$WORK/b.err" || {
  echo "FAIL: PlanStats did not charge a cache filter:"; cat "$WORK/b.err";
  exit 1;
}
# Zero mining iterations: the --stats iterations block must be empty (no
# per-k lines between "iterations:" and the "io:" line).
if awk '/^iterations:$/{blk=1; next} /^io:/{blk=0} blk && /k=/{found=1}
        END{exit found}' "$WORK/b.err"; then
  echo "re-query ran zero mining iterations"
else
  echo "FAIL: re-query ran mining iterations:"; cat "$WORK/b.err"; exit 1
fi

echo "== reference: fresh full mine at ${QUERY_MINSUP}%"
"$SETM_MINE" --input "$WORK/sales.csv" --minsup "$QUERY_MINSUP" \
  --storage heap --pool-frames "$POOL" --format csv --stats \
  > "$WORK/ref_rules.csv" 2> "$WORK/ref.err"

if ! diff <(sort "$WORK/b_rules.csv") <(sort "$WORK/ref_rules.csv"); then
  echo "FAIL: cached rules differ from the fresh full mine"
  exit 1
fi
echo "rules identical ($(($(wc -l < "$WORK/b_rules.csv") - 1)) rules)"

reads_of() { sed -n 's/^db io: reads=\([0-9]*\).*/\1/p' "$1"; }
B_READS="$(reads_of "$WORK/b.err")"
REF_READS="$(reads_of "$WORK/ref.err")"
echo "cached re-query: $B_READS page reads; fresh mine: $REF_READS"
if [[ -z "$B_READS" || -z "$REF_READS" || "$B_READS" -ge "$REF_READS" ]]; then
  echo "FAIL: cached re-query did not read fewer pages"
  exit 1
fi

echo "cache smoke OK"

#!/usr/bin/env bash
# Two-invocation persistence smoke for `setm_mine --db`:
#
#   process A  stores a mined run into a fresh database file;
#   process B  reopens the file and appends a delta batch incrementally;
#   reference  a single-process full remine of the combined CSV.
#
# Asserts, per the durable-catalog acceptance criteria:
#   1. process B takes the incremental (delta) path, not the fallback;
#   2. B's rules are bit-identical to the reference full remine;
#   3. B's whole-process page reads (IoStats `db io:` line) are fewer than
#      a full remine's at the same --pool-frames;
#   4. corrupt files (truncated superblock) are rejected, not reinitialized.
#
#   usage: scripts/smoke_db_persist.sh path/to/setm_mine [workdir]
set -euo pipefail

SETM_MINE="${1:?usage: smoke_db_persist.sh path/to/setm_mine [workdir]}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"

MINSUP=20
POOL=32  # small pool so page reads are observable, not absorbed by caching

# Deterministic correlated data: a frequent {1,2}(+3,+4) core plus
# id-dependent filler, 3000 base transactions and a 1% delta batch.
awk 'BEGIN{for(t=1;t<=3000;t++){print t","1; print t","2;
  if(t%2==0)print t","3; if(t%3==0)print t","4;
  print t","(5+t%7); print t","(12+t%11)}}' > "$WORK/base.csv"
awk 'BEGIN{for(t=3001;t<=3030;t++){print t","1; print t","2;
  if(t%2==0)print t","3; print t","(5+t%7)}}' > "$WORK/delta.csv"
cat "$WORK/base.csv" "$WORK/delta.csv" > "$WORK/combined.csv"

echo "== process A: mine + store into a fresh database file"
"$SETM_MINE" --db "$WORK/sales.db" --input "$WORK/base.csv" --store fi \
  --minsup "$MINSUP" --pool-frames "$POOL" --format csv \
  > /dev/null 2> "$WORK/a.err"

echo "== process B: reopen, append incrementally"
"$SETM_MINE" --db "$WORK/sales.db" --append "$WORK/delta.csv" --incremental \
  --store fi --minsup "$MINSUP" --pool-frames "$POOL" --format csv --stats \
  > "$WORK/b_rules.csv" 2> "$WORK/b.err"

grep -q "delta path" "$WORK/b.err" || {
  echo "FAIL: process B fell back to a full remine"; cat "$WORK/b.err"; exit 1;
}

echo "== reference: single-process full remine of the combined CSV"
"$SETM_MINE" --input "$WORK/combined.csv" --minsup "$MINSUP" --format csv \
  > "$WORK/ref_rules.csv" 2> /dev/null

if ! diff <(sort "$WORK/b_rules.csv") <(sort "$WORK/ref_rules.csv"); then
  echo "FAIL: cross-invocation incremental rules differ from full remine"
  exit 1
fi
echo "rules identical ($(($(wc -l < "$WORK/b_rules.csv") - 1)) rules)"

echo "== page reads: incremental reopen vs full remine (same pool size)"
"$SETM_MINE" --input "$WORK/combined.csv" --minsup "$MINSUP" --storage heap \
  --pool-frames "$POOL" --stats --format csv \
  > /dev/null 2> "$WORK/full.err"

reads_of() { sed -n 's/^db io: reads=\([0-9]*\).*/\1/p' "$1"; }
B_READS="$(reads_of "$WORK/b.err")"
FULL_READS="$(reads_of "$WORK/full.err")"
echo "incremental (process B): $B_READS page reads; full remine: $FULL_READS"
if [[ -z "$B_READS" || -z "$FULL_READS" || "$B_READS" -ge "$FULL_READS" ]]; then
  echo "FAIL: incremental path did not read fewer pages"
  exit 1
fi

echo "== recovery: SALES without the requested store remines from the file"
"$SETM_MINE" --db "$WORK/sales.db" --store fi2 --minsup "$MINSUP" \
  --pool-frames "$POOL" --format csv > "$WORK/recover_rules.csv" \
  2> "$WORK/recover.err"
grep -q "no stored run under 'fi2'" "$WORK/recover.err" || {
  echo "FAIL: recovery path not taken:"; cat "$WORK/recover.err"; exit 1;
}
if ! diff <(sort "$WORK/recover_rules.csv") <(sort "$WORK/ref_rules.csv"); then
  echo "FAIL: remine-from-file rules differ from reference"
  exit 1
fi

echo "== corrupt files are rejected, never reinitialized"
printf 'definitely not a database' > "$WORK/corrupt.db"
if "$SETM_MINE" --db "$WORK/corrupt.db" --append "$WORK/delta.csv" \
     --store fi 2> "$WORK/corrupt.err"; then
  echo "FAIL: opening a corrupt file succeeded"; exit 1
fi
grep -q "too small for a superblock" "$WORK/corrupt.err" || {
  echo "FAIL: corrupt-file error not descriptive:"; cat "$WORK/corrupt.err";
  exit 1;
}
[[ "$(cat "$WORK/corrupt.db")" == "definitely not a database" ]] || {
  echo "FAIL: rejected file was modified"; exit 1;
}

echo "persistence smoke OK"

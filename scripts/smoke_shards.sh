#!/usr/bin/env bash
# End-to-end smoke of the scale-out subsystem:
#
#   split     setm_shardctl shards a 1500-transaction CSV 3 ways into
#             per-shard database files + a manifest;
#   local     distributed mine over the file shards must be byte-identical
#             to `setm_mine --format csv` on the unsplit CSV, including the
#             per-iteration |R'| / |R| / |C| stats;
#   remote    the same query through THREE live setm_served daemons (one
#             per shard, remote manifest) must also be byte-identical;
#   failure   with one daemon killed, the distributed mine must fail with
#             a clean Unavailable naming the dead shard — never wrong
#             output — `shardctl stats` must exit 3, and the survivors
#             must still serve a parseable STATS prom export.
#
#   usage: scripts/smoke_shards.sh setm_shardctl setm_mine setm_served setm_loadgen [workdir]
set -euo pipefail

SHARDCTL="${1:?usage: smoke_shards.sh setm_shardctl setm_mine setm_served setm_loadgen [workdir]}"
SETM_MINE="${2:?usage: smoke_shards.sh setm_shardctl setm_mine setm_served setm_loadgen [workdir]}"
SERVED="${3:?usage: smoke_shards.sh setm_shardctl setm_mine setm_served setm_loadgen [workdir]}"
LOADGEN="${4:?usage: smoke_shards.sh setm_shardctl setm_mine setm_served setm_loadgen [workdir]}"
WORK="${5:-$(mktemp -d)}"
mkdir -p "$WORK"

MINSUP=2
MINCONF=70

SERVER_PIDS=()
cleanup() {
  for pid in "${SERVER_PIDS[@]:-}"; do
    [[ -n "$pid" ]] && kill -KILL "$pid" 2>/dev/null || true
  done
}
trap cleanup EXIT

awk 'BEGIN{for(t=1;t<=1500;t++){print t","1; print t","2;
  if(t%2==0)print t","3; if(t%3==0)print t","4;
  print t","(5+t%7); print t","(12+t%11)}}' > "$WORK/sales.csv"

# The reference answer: the one-shot CLI on the unsplit CSV.
"$SETM_MINE" --input "$WORK/sales.csv" --minsup "$MINSUP" \
  --minconf "$MINCONF" --format csv --stats \
  > "$WORK/rules_cli.csv" 2> "$WORK/cli.stats"

echo "== split: 3 file shards + manifest"
"$SHARDCTL" split --input "$WORK/sales.csv" --shards 3 \
  --out "$WORK/shards" > "$WORK/split.out"
MANIFEST="$WORK/shards/shards.manifest"
[[ -s "$MANIFEST" ]] || { echo "FAIL: split wrote no manifest"; exit 1; }
grep -q "^setm-shards v1$" "$MANIFEST" || {
  echo "FAIL: manifest header missing"; cat "$MANIFEST"; exit 1
}

echo "== local: distributed mine over the file shards"
"$SHARDCTL" mine --manifest "$MANIFEST" --minsup "$MINSUP" \
  --minconf "$MINCONF" --format csv --stats \
  > "$WORK/rules_local.csv" 2> "$WORK/local.stats"
cmp -s "$WORK/rules_local.csv" "$WORK/rules_cli.csv" || {
  echo "FAIL: file-shard rules differ from setm_mine --format csv"
  diff "$WORK/rules_cli.csv" "$WORK/rules_local.csv" | head -10; exit 1
}
# Per-iteration cardinalities must match too (timings excluded).
for f in cli local; do
  grep '^  k=' "$WORK/$f.stats" | awk '{print $1, $2, $3, $4}' \
    > "$WORK/$f.iters"
done
cmp -s "$WORK/local.iters" "$WORK/cli.iters" || {
  echo "FAIL: per-iteration stats diverge between sharded and single-node"
  diff "$WORK/cli.iters" "$WORK/local.iters"; exit 1
}
echo "file shards byte-identical ($(wc -l < "$WORK/rules_cli.csv") rule lines, $(wc -l < "$WORK/cli.iters") iterations)"

echo "== remote: one setm_served daemon per shard"
PORTS=()
for i in 0 1 2; do
  "$SERVED" --db "$WORK/shards/shard$i.db" --port 0 \
    --port-file "$WORK/port$i" > /dev/null 2> "$WORK/server$i.err" &
  SERVER_PIDS[$i]=$!
done
for i in 0 1 2; do
  for _ in $(seq 1 100); do
    [[ -s "$WORK/port$i" ]] && break
    kill -0 "${SERVER_PIDS[$i]}" 2>/dev/null || {
      echo "FAIL: daemon $i died during startup"
      cat "$WORK/server$i.err"; exit 1
    }
    sleep 0.1
  done
  [[ -s "$WORK/port$i" ]] || { echo "FAIL: no port file for daemon $i"; exit 1; }
  PORTS[$i]="$(cat "$WORK/port$i")"
done
{
  echo "setm-shards v1"
  echo "epoch 1"
  echo "shards 3"
  for i in 0 1 2; do
    echo "shard $i remote 127.0.0.1:${PORTS[$i]} table sales"
  done
} > "$WORK/remote.manifest"

"$SHARDCTL" stats --manifest "$WORK/remote.manifest" > "$WORK/stats.out" || {
  echo "FAIL: shardctl stats reports unreachable shards"
  cat "$WORK/stats.out"; exit 1
}
grep -c "reachable=yes" "$WORK/stats.out" | grep -q "^3$" || {
  echo "FAIL: expected 3 reachable shards"; cat "$WORK/stats.out"; exit 1
}

"$SHARDCTL" mine --manifest "$WORK/remote.manifest" --minsup "$MINSUP" \
  --minconf "$MINCONF" --format csv --stats \
  > "$WORK/rules_remote.csv" 2> "$WORK/remote.stats"
cmp -s "$WORK/rules_remote.csv" "$WORK/rules_cli.csv" || {
  echo "FAIL: socket-shard rules differ from setm_mine --format csv"
  diff "$WORK/rules_cli.csv" "$WORK/rules_remote.csv" | head -10; exit 1
}
grep '^  k=' "$WORK/remote.stats" | awk '{print $1, $2, $3, $4}' \
  > "$WORK/remote.iters"
cmp -s "$WORK/remote.iters" "$WORK/cli.iters" || {
  echo "FAIL: remote per-iteration stats diverge from single-node"
  diff "$WORK/cli.iters" "$WORK/remote.iters"; exit 1
}
echo "socket shards byte-identical to the CLI"

echo "== failure: kill shard 1's daemon, the mine must go Unavailable"
disown "${SERVER_PIDS[1]}"   # suppress the shell's job-kill notification
kill -KILL "${SERVER_PIDS[1]}"
SERVER_PIDS[1]=""
rc=0
"$SHARDCTL" mine --manifest "$WORK/remote.manifest" --minsup "$MINSUP" \
  --minconf "$MINCONF" --format csv \
  > "$WORK/rules_down.csv" 2> "$WORK/down.err" || rc=$?
[[ "$rc" -ne 0 ]] || {
  echo "FAIL: mine succeeded with a dead shard"; exit 1
}
grep -q "Unavailable" "$WORK/down.err" || {
  echo "FAIL: dead shard did not surface as Unavailable"
  cat "$WORK/down.err"; exit 1
}
grep -q "shard 's1@" "$WORK/down.err" || {
  echo "FAIL: the Unavailable error does not name the dead shard"
  cat "$WORK/down.err"; exit 1
}
[[ ! -s "$WORK/rules_down.csv" ]] || {
  echo "FAIL: a failed distributed mine still produced rule output"; exit 1
}
rc=0
"$SHARDCTL" stats --manifest "$WORK/remote.manifest" \
  > "$WORK/stats_down.out" || rc=$?
[[ "$rc" -eq 3 ]] || {
  echo "FAIL: shardctl stats should exit 3 with a dead shard, got $rc"
  cat "$WORK/stats_down.out"; exit 1
}
grep -q "reachable=no" "$WORK/stats_down.out" || {
  echo "FAIL: stats does not mark the dead shard unreachable"; exit 1
}

# The survivors must still serve: parseable STATS prom with served requests.
printf 'STATS prom\nQUIT\n' | "$LOADGEN" --connect "127.0.0.1:${PORTS[0]}" \
  --payload-only --fail-on-err > "$WORK/survivor.prom"
grep -q "^# TYPE setm_srv_requests_total counter" "$WORK/survivor.prom" || {
  echo "FAIL: survivor STATS prom lacks setm_srv_requests_total"
  head "$WORK/survivor.prom"; exit 1
}
awk '/^# /{next} !/^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9]+$/ {
  print "FAIL: unparseable sample line: " $0; bad=1 } END{ exit bad }' \
  "$WORK/survivor.prom"
echo "survivors healthy: STATS prom parses on shard 0"

echo "shard smoke OK"

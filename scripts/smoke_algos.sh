#!/usr/bin/env bash
# Cross-algorithm smoke for the unified `--algo` dispatch:
#
#   1. `setm_mine --algo list` must enumerate the registry (all seven
#      built-in algorithms present);
#   2. every listed algorithm mines the paper's Section 4.2 example and its
#      rule output must be byte-identical to the committed SETM golden file
#      (tests/golden/paper_example_rules.csv);
#   3. every listed algorithm mines a deterministic Quest-style workload
#      and is diffed against the SETM run's output — setm-parallel
#      additionally at --threads 4.
#
# A newly registered algorithm is covered automatically: it appears in
# `--algo list` and therefore in both sweeps.
#
#   usage: scripts/smoke_algos.sh path/to/setm_mine [workdir]
set -euo pipefail

SETM_MINE="${1:?usage: smoke_algos.sh path/to/setm_mine [workdir]}"
WORK="${2:-$(mktemp -d)}"
mkdir -p "$WORK"
GOLDEN="$(cd "$(dirname "$0")/.." && pwd)/tests/golden/paper_example_rules.csv"

echo "== --algo list enumerates the registry"
"$SETM_MINE" --algo list > "$WORK/algos.tsv"
ALGOS="$(cut -f1 "$WORK/algos.tsv")"
[ -n "$ALGOS" ] || { echo "FAIL: --algo list printed nothing"; exit 1; }
for a in setm setm-parallel setm-sql nested-loop apriori ais brute-force; do
  grep -qx "$a" <<< "$ALGOS" || {
    echo "FAIL: built-in '$a' missing from --algo list"; exit 1;
  }
done
echo "$(wc -l < "$WORK/algos.tsv") algorithms registered"

echo "== paper example: every algorithm vs the SETM golden file"
{
  echo "trans_id,item"
  for row in 10,0 10,1 10,2 20,0 20,1 20,3 30,0 30,1 30,2 40,1 40,2 40,3 \
             50,0 50,2 50,6 60,0 60,3 60,6 70,0 70,4 70,7 80,3 80,4 80,5 \
             90,3 90,4 90,5 99,3 99,4 99,5; do
    echo "$row"
  done
} > "$WORK/paper.csv"
for a in $ALGOS; do
  "$SETM_MINE" --input "$WORK/paper.csv" --algo "$a" \
    --minsup 30 --minconf 70 --format csv > "$WORK/paper_$a.csv"
  diff "$WORK/paper_$a.csv" "$GOLDEN" > /dev/null || {
    echo "FAIL: --algo $a diverges from the SETM golden on the paper example"
    diff "$WORK/paper_$a.csv" "$GOLDEN" || true
    exit 1
  }
done
echo "all algorithms byte-identical to $GOLDEN"

echo "== deterministic Quest-style workload: every algorithm vs setm"
awk 'BEGIN{for(t=1;t<=600;t++){print t","1; print t","2;
  if(t%2==0)print t","3; if(t%3==0)print t","4;
  print t","(5+t%7); print t","(12+t%11)}}' > "$WORK/quest.csv"
"$SETM_MINE" --input "$WORK/quest.csv" --minsup 10 --format csv \
  > "$WORK/quest_ref.csv"
for a in $ALGOS; do
  "$SETM_MINE" --input "$WORK/quest.csv" --algo "$a" --minsup 10 \
    --format csv > "$WORK/quest_$a.csv"
  diff "$WORK/quest_$a.csv" "$WORK/quest_ref.csv" > /dev/null || {
    echo "FAIL: --algo $a diverges from setm on the Quest workload"; exit 1;
  }
done
"$SETM_MINE" --input "$WORK/quest.csv" --algo setm-parallel --threads 4 \
  --minsup 10 --format csv > "$WORK/quest_par4.csv"
diff "$WORK/quest_par4.csv" "$WORK/quest_ref.csv" > /dev/null || {
  echo "FAIL: setm-parallel --threads 4 diverges from serial setm"; exit 1;
}
rules=$(($(wc -l < "$WORK/quest_ref.csv") - 1))
echo "all algorithms identical on the Quest workload ($rules rules)"

echo "algo smoke OK"

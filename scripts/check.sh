#!/usr/bin/env bash
# One-command configure + build + test.
#
#   scripts/check.sh            # release preset, full suite
#   scripts/check.sh debug      # debug preset
#   scripts/check.sh asan       # ASan+UBSan preset
#   scripts/check.sh release tier1   # only the fast tier-1 label
set -euo pipefail

preset="${1:-release}"
label="${2:-}"

cd "$(dirname "$0")/.."

cmake --preset "$preset"
cmake --build --preset "$preset" -j
ctest --preset "$preset" ${label:+-L "$label"}

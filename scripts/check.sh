#!/usr/bin/env bash
# One-command configure + build + test.
#
#   scripts/check.sh            # release preset, full suite + bench smoke
#   scripts/check.sh debug      # debug preset
#   scripts/check.sh asan       # ASan+UBSan preset
#   scripts/check.sh release tier1   # only the fast tier-1 label
set -euo pipefail

preset="${1:-release}"
label="${2:-}"

cd "$(dirname "$0")/.."

cmake --preset "$preset"
cmake --build --preset "$preset" -j
ctest --preset "$preset" ${label:+-L "$label"}

# Bench smoke-run: the incremental-maintenance bench self-checks that the
# delta path matches a full remine bit-for-bit and reads fewer pages on the
# smallest batch. Skipped when benches were not built for this preset.
bench_bin="build/$preset/bench/incremental_updates"
if [[ -x "$bench_bin" ]]; then
  "$bench_bin" --smoke
fi

# Repeated-query bench smoke: re-queries through the MiningPlanner must be
# cache-filtered with zero mining iterations, bit-identical results and
# >=10x fewer page reads than the cold mine.
cache_bench_bin="build/$preset/bench/repeated_query"
if [[ -x "$cache_bench_bin" ]]; then
  "$cache_bench_bin" --smoke
fi

# Persistence smoke: store a mined run into a database file in one
# setm_mine invocation, append incrementally from a second invocation, and
# assert bit-identical rules with fewer page reads than a full remine.
mine_bin="build/$preset/tools/setm_mine"
if [[ -x "$mine_bin" ]]; then
  scripts/smoke_db_persist.sh "$mine_bin"
fi

# Crash-recovery smoke: SIGKILL setm_mine mid-append at varied points, retry
# each interrupted batch, and assert the recovered database is bit-identical
# to a never-killed control.
if [[ -x "$mine_bin" ]]; then
  scripts/smoke_crash_recovery.sh "$mine_bin"
fi

# Result-cache smoke: store a run at a low support in one setm_mine
# invocation, re-query at a higher support from a second one, and assert it
# is cache-filtered with zero mining iterations and identical rules.
if [[ -x "$mine_bin" ]]; then
  scripts/smoke_cache.sh "$mine_bin"
fi

# Cross-algorithm smoke: every algorithm in `setm_mine --algo list` must
# reproduce the SETM golden rules on the paper example and match the SETM
# output on a deterministic Quest-style workload.
if [[ -x "$mine_bin" ]]; then
  scripts/smoke_algos.sh "$mine_bin"
fi

# Observability smoke: a store/re-query pair with --trace and
# --metrics prom must produce a full-mine trace with per-iteration read
# deltas, a cache-filter trace with zero iteration spans, parseable
# Prometheus exports and the pool:/wal: --stats ledger lines.
if [[ -x "$mine_bin" ]]; then
  scripts/smoke_observability.sh "$mine_bin"
fi

# Server smoke: setm_served on a seeded database, concurrent clients
# byte-identical to the CLI, cache-filter traces without iteration spans,
# parseable STATS prom, survival of a client killed mid-MINE, graceful
# SIGTERM shutdown.
served_bin="build/$preset/tools/setm_served"
loadgen_bin="build/$preset/tools/setm_loadgen"
if [[ -x "$served_bin" && -x "$loadgen_bin" && -x "$mine_bin" ]]; then
  scripts/smoke_server.sh "$served_bin" "$loadgen_bin" "$mine_bin"
fi

# Server load bench smoke: N concurrent in-process clients over a mixed
# MINE/RULES/STATS workload; asserts zero protocol errors, bit-identity
# with a direct mine, and that the shared result cache engages.
server_load_bin="build/$preset/bench/server_load"
if [[ -x "$server_load_bin" ]]; then
  "$server_load_bin" --smoke
fi

# Shard smoke: setm_shardctl splits a CSV 3 ways; the distributed mine over
# file shards AND over three live setm_served daemons must be byte-identical
# to single-node setm_mine; a killed daemon must surface as a clean
# Unavailable naming the shard while the survivors keep serving.
shardctl_bin="build/$preset/tools/setm_shardctl"
if [[ -x "$shardctl_bin" && -x "$mine_bin" && -x "$served_bin" \
      && -x "$loadgen_bin" ]]; then
  scripts/smoke_shards.sh "$shardctl_bin" "$mine_bin" "$served_bin" \
    "$loadgen_bin"
fi

# Shard scaling bench smoke: the distributed coordinator must stay
# bit-identical to single-node SETM at 1/2/4/8 shards and turn an injected
# shard failure into Unavailable, never wrong output.
shard_bench_bin="build/$preset/bench/shard_scaling"
if [[ -x "$shard_bench_bin" ]]; then
  "$shard_bench_bin" --smoke
fi

#!/usr/bin/env bash
# End-to-end smoke of the resident mining daemon:
#
#   seed      setm_mine loads a 2000-transaction CSV into a database file;
#   serve     setm_served opens it once (--trace) on an ephemeral port;
#   phase 1   one client full-mines at a low support (write-back stores it);
#   phase 2   TWO CONCURRENT clients re-ask at a higher support — both must
#             be answered from the shared result cache;
#   phase 3   a client is hard-killed mid-MINE; the daemon must cancel the
#             orphaned job and keep serving;
#   shutdown  SIGTERM must exit 0 with the served-requests summary.
#
# Asserts:
#   1. both concurrent clients' RULES payloads are byte-identical to
#      `setm_mine --format csv` on the same question — the CLI and the
#      server share one renderer, and the smoke proves it end to end;
#   2. the server's --trace stream contains a full-mine request tree with
#      iteration spans AND cache-filter request trees with ZERO iteration
#      spans (checked per trace block, not globally);
#   3. STATS prom parses exactly like the CLI's --metrics prom export
#      (unique # TYPE names, well-formed samples, monotone cumulative
#      buckets) and carries the setm_srv_* server families;
#   4. after the mid-MINE kill the daemon still answers, and its final
#      summary counts the disconnect.
#
#   usage: scripts/smoke_server.sh setm_served setm_loadgen setm_mine [workdir]
set -euo pipefail

SERVED="${1:?usage: smoke_server.sh setm_served setm_loadgen setm_mine [workdir]}"
LOADGEN="${2:?usage: smoke_server.sh setm_served setm_loadgen setm_mine [workdir]}"
SETM_MINE="${3:?usage: smoke_server.sh setm_served setm_loadgen setm_mine [workdir]}"
WORK="${4:-$(mktemp -d)}"
mkdir -p "$WORK"

SEED_MINSUP=5    # percent: the seed store, ABOVE the cold query so the
                 # server's first MINE is a genuine full mine
COLD_MINSUP=2    # percent: the cold full mine, written back to the store
QUERY_MINSUP=3   # percent: the dominated re-query both clients ask
MINCONF=70

SERVER_PID=""
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

awk 'BEGIN{for(t=1;t<=2000;t++){print t","1; print t","2;
  if(t%2==0)print t","3; if(t%3==0)print t","4;
  print t","(5+t%7); print t","(12+t%11)}}' > "$WORK/sales.csv"

echo "== seed: load the CSV into a database file"
"$SETM_MINE" --db "$WORK/sales.db" --input "$WORK/sales.csv" --store fi \
  --minsup "$SEED_MINSUP" --minconf "$MINCONF" --format csv \
  > /dev/null 2>&1

# The reference answer, from the one-shot CLI on the same data: what every
# server client must receive, byte for byte.
"$SETM_MINE" --input "$WORK/sales.csv" --minsup "$QUERY_MINSUP" \
  --minconf "$MINCONF" --format csv > "$WORK/rules_cli.csv" 2>/dev/null

echo "== serve: daemon on an ephemeral port, tracing to stderr"
"$SERVED" --db "$WORK/sales.db" --port 0 --port-file "$WORK/port" --trace \
  > "$WORK/server.out" 2> "$WORK/server.err" &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$WORK/port" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "FAIL: daemon died during startup"; cat "$WORK/server.err"; exit 1
  }
  sleep 0.1
done
[[ -s "$WORK/port" ]] || { echo "FAIL: no port file"; exit 1; }
PORT="$(cat "$WORK/port")"
echo "   listening on 127.0.0.1:$PORT"

run_client() {  # run_client <script-string> <output-file>
  printf '%s\n' "$1" | "$LOADGEN" --connect "127.0.0.1:$PORT" \
    --payload-only --fail-on-err > "$2"
}

echo "== phase 1: cold full mine at ${COLD_MINSUP}% (stores the run)"
run_client "MINE sales SUPPORT ${COLD_MINSUP}%
QUIT" "$WORK/cold.out"

echo "== phase 2: two concurrent clients re-query at ${QUERY_MINSUP}%"
run_client "MINE sales SUPPORT ${QUERY_MINSUP}%
RULES ${MINCONF}
QUIT" "$WORK/client_a.out" &
A_PID=$!
run_client "MINE sales SUPPORT ${QUERY_MINSUP}%
RULES ${MINCONF}
QUIT" "$WORK/client_b.out" &
B_PID=$!
wait "$A_PID" "$B_PID"

# -- 1. bit-identity against the CLI -----------------------------------------
# The client output is the MINE itemsets payload followed by the RULES CSV;
# the CSV starts at its header line.
for c in a b; do
  awk '/^antecedent,consequent,/{p=1} p' "$WORK/client_$c.out" \
    > "$WORK/rules_$c.csv"
  cmp -s "$WORK/rules_$c.csv" "$WORK/rules_cli.csv" || {
    echo "FAIL: client $c's RULES payload differs from setm_mine --format csv"
    diff "$WORK/rules_cli.csv" "$WORK/rules_$c.csv" | head -10
    exit 1
  }
done
cmp -s "$WORK/client_a.out" "$WORK/client_b.out" || {
  echo "FAIL: the two concurrent clients got different answers"; exit 1
}
echo "both clients byte-identical to the CLI ($(wc -l < "$WORK/rules_cli.csv") rule lines)"

# -- 2. per-block trace shape -------------------------------------------------
# Each request renders one "trace:" block (indented span tree) to stderr.
# The cold mine must show iteration spans; every cache-filter block must
# show NONE — the planner's no-mining guarantee, observed at the server.
awk '
  function flush() {
    if (!blk) return
    blocks++
    if (fm) { full++; if (!it) missing_iter=1 }
    if (cf) { cache++; if (it) { print "offending cache-filter block:" blktxt; bad=1 } }
    blk=0; blktxt=""
  }
  /^trace:$/ { flush(); blk=1; cf=0; fm=0; it=0; next }
  blk && /^[^ ]/ { flush(); next }
  blk {
    blktxt=blktxt "\n" $0
    if (/strategy=cache-filter/) cf=1
    if (/strategy=full-mine/)    fm=1
    if (/^ +iteration /)         it++
  }
  END {
    flush()
    printf "trace blocks: %d total, %d full-mine, %d cache-filter\n", blocks, full, cache
    if (full < 1)    { print "FAIL: no full-mine trace block"; bad=1 }
    if (missing_iter){ print "FAIL: a full-mine block has no iteration spans"; bad=1 }
    if (cache < 2)   { print "FAIL: expected both re-queries cache-filtered"; bad=1 }
    exit bad
  }
' "$WORK/server.err" || { echo "(server trace was $WORK/server.err)"; exit 1; }

# -- 3. STATS prom parses like the CLI export ---------------------------------
run_client "STATS prom
QUIT" "$WORK/stats.prom"
awk '
  /^# HELP /{next}
  /^# TYPE /{
    if (seen[$3]++) { print "FAIL: duplicate # TYPE for " $3; bad=1 }
    next
  }
  {
    if ($0 !~ /^[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? -?[0-9]+$/) {
      print "FAIL: unparseable sample line: " $0; bad=1; next
    }
    name=$1
    if (name ~ /_bucket\{le="\+Inf"\}$/) {
      base=name; sub(/_bucket\{.*/, "", base)
      inf[base]=$2
    } else if (name ~ /_bucket\{/) {
      base=name; sub(/_bucket\{.*/, "", base)
      if ($2+0 < last[base]+0) {
        print "FAIL: non-monotone buckets for " base; bad=1
      }
      last[base]=$2
    } else if (name ~ /_count$/) {
      base=name; sub(/_count$/, "", base)
      if (base in inf && inf[base]+0 != $2+0) {
        print "FAIL: +Inf bucket != _count for " base; bad=1
      }
    }
  }
  END{ exit bad }
' "$WORK/stats.prom" || { echo "(export was $WORK/stats.prom)"; exit 1; }
for family in setm_srv_requests_total setm_srv_connections_total \
              setm_srv_request_micros setm_plan_requests_total \
              setm_plan_cache_filter_total; do
  grep -q "^# TYPE $family " "$WORK/stats.prom" || {
    echo "FAIL: metric family $family missing from STATS prom"; exit 1
  }
done
echo "STATS prom parses (unique names, monotone buckets, srv families)"

# -- 4. hard-killed client mid-MINE -------------------------------------------
echo "== phase 3: kill a client mid-MINE"
printf '!send MINE sales SUPPORT 0.1%%\n!abort\n' \
  | "$LOADGEN" --connect "127.0.0.1:$PORT" > /dev/null || true
sleep 0.5
kill -0 "$SERVER_PID" 2>/dev/null || {
  echo "FAIL: daemon died after a client was killed mid-MINE"
  cat "$WORK/server.err"; exit 1
}
run_client "PING
QUIT" "$WORK/after_kill.out" || {
  echo "FAIL: daemon unresponsive after a client was killed mid-MINE"; exit 1
}
echo "daemon healthy after the kill"

# -- graceful shutdown ---------------------------------------------------------
kill -TERM "$SERVER_PID"
rc=0
wait "$SERVER_PID" || rc=$?
SERVER_PID=""
[[ "$rc" -eq 0 ]] || {
  echo "FAIL: daemon exited $rc on SIGTERM"; cat "$WORK/server.err"; exit 1
}
grep -Eq "^served [0-9]+ requests on [0-9]+ connections" "$WORK/server.err" || {
  echo "FAIL: no served-requests summary after shutdown"
  tail -5 "$WORK/server.err"; exit 1
}
DISCONNECTS="$(grep -Eo "[0-9]+ disconnects" "$WORK/server.err" | grep -Eo "^[0-9]+")"
[[ "${DISCONNECTS:-0}" -ge 1 ]] || {
  echo "FAIL: the killed client was not counted as a disconnect"; exit 1
}
echo "graceful shutdown: $(grep -E '^served' "$WORK/server.err")"

echo "server smoke OK"
